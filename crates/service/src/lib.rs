//! # ossa-service — overload-resilient out-of-SSA translation service
//!
//! A channel-backed, multi-worker translation service over the pooled
//! isolated engines of [`ossa_destruct`]. Where the engine crate answers
//! "what happens when one *function* misbehaves?" (panic isolation, typed
//! errors, pristine-snapshot retries), this crate answers "what happens
//! when the *load* misbehaves?" — and makes sure the answer is never
//! "unbounded queues, unbounded latency, and a process that falls over".
//!
//! ## The overload model
//!
//! Every request passes through four gates, each with a typed outcome:
//!
//! 1. **Admission** — a bounded queue with a pick-one [`AdmissionPolicy`]:
//!    reject new work ([`SubmitError::QueueFull`]), shed the oldest queued
//!    request ([`ServiceError::Shed`]), or block the submitter with a
//!    bounded wait ([`SubmitError::AdmissionTimeout`]). The function is
//!    returned in every refusal — nothing is lost.
//! 2. **Deadline** — an optional per-request wall-clock budget spanning
//!    queue wait *and* translation. Expiry in the queue is
//!    [`ServiceError::ExpiredInQueue`]; expiry mid-translation trips the
//!    cancellation token ([`ossa_liveness::fuel::set_deadline`]) at the
//!    next phase boundary or fixpoint tick and surfaces as
//!    [`TranslateError::DeadlineExceeded`]. The worker is recycled, never
//!    quarantined: a deadline says nothing about the health of the worker.
//! 3. **Degradation ladder** — each request climbs up to three rungs until
//!    one succeeds: the configured options and validation, then
//!    [`OutOfSsaOptions::conservative_fallback`] with validation dropped
//!    one tier, then [`OutOfSsaOptions::minimal_coalescing`] with
//!    validation off. Exponential backoff (bounded by the deadline)
//!    separates rungs. Under sustained overload a global degradation level
//!    *starts* requests further up the ladder, trading copy quality for
//!    throughput; hysteresis thresholds govern when the level recovers.
//! 4. **Workers** — persistent [`EngineWorker`]s (analysis caches, scratch,
//!    function pool) that live for the whole service, so steady-state
//!    translation allocates nothing and a faulted request quarantines only
//!    cache state, exactly as the engine's isolation contract specifies.
//!
//! Every accepted request terminates with exactly one reply: a translated
//! function, or a typed error. Shutdown drains the backlog deterministically
//! (each queued request translates or expires — typed either way) before
//! returning the final [`ServiceStats`].

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use ossa_destruct::{
    translate_function_isolated_policy_pooled, EnginePolicy, EngineWorker, Limits, OutOfSsaOptions,
    OutOfSsaStats, RecoveryOutcome, RecoveryPolicy, TranslateError, ValidationMode,
};
use ossa_ir::Function;
use ossa_liveness::fuel;

mod queue;
mod stats;

pub use stats::{LatencyHistogram, ServiceStats};

use queue::{PushRefusal, QueueEntry, SharedQueue};

/// What `submit` does when the bounded queue is full.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Refuse the new request immediately with [`SubmitError::QueueFull`].
    #[default]
    Reject,
    /// Evict the *oldest* queued request (it receives
    /// [`ServiceError::Shed`]) and admit the new one. Prefers fresh work —
    /// the oldest request has burned the most of its deadline already.
    ShedOldest,
    /// Block the submitter until space opens, bounded by the request
    /// deadline and [`ServiceConfig::max_admission_wait`]; on expiry,
    /// [`SubmitError::AdmissionTimeout`].
    Block,
}

/// Queue-depth thresholds of the global degradation ladder. Disabled by
/// default (thresholds no realistic queue reaches).
///
/// The level moves one step per evaluation (at admission for increases, at
/// dequeue for decreases), so transitions are countable and deterministic
/// under a scripted load: `degrade_depth` pushes level 0 → 1, `severe_depth`
/// pushes 1 → 2, and the level steps back down only once the depth has
/// fallen to `recover_depth` — the gap between `degrade_depth` and
/// `recover_depth` is the hysteresis band that stops the ladder from
/// flapping at the threshold.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DegradationConfig {
    /// Depth at which the service starts new requests at level ≥ 1
    /// (conservative options, validation dropped a tier).
    pub degrade_depth: usize,
    /// Depth at which the service starts new requests at level 2 (minimal
    /// coalescing, validation off).
    pub severe_depth: usize,
    /// Depth at or below which the level steps back toward 0.
    pub recover_depth: usize,
}

impl Default for DegradationConfig {
    fn default() -> Self {
        Self { degrade_depth: usize::MAX, severe_depth: usize::MAX, recover_depth: 0 }
    }
}

impl DegradationConfig {
    fn enabled(&self) -> bool {
        self.degrade_depth != usize::MAX || self.severe_depth != usize::MAX
    }
}

/// Configuration of a [`TranslationService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads (each owns a persistent [`EngineWorker`]). Clamped to
    /// at least 1.
    pub workers: usize,
    /// Bounded queue capacity. Clamped to at least 1.
    pub queue_capacity: usize,
    /// What `submit` does at capacity.
    pub admission: AdmissionPolicy,
    /// Deadline applied to requests submitted without an explicit one.
    pub default_deadline: Option<Duration>,
    /// Upper bound on a [`AdmissionPolicy::Block`] wait, independent of the
    /// request deadline. `None`: bounded by the deadline alone (and
    /// unbounded when the request has none).
    pub max_admission_wait: Option<Duration>,
    /// Translation options of ladder rung 0.
    pub options: OutOfSsaOptions,
    /// Output validation of ladder rung 0; rung 1 drops it one tier
    /// (Differential → Structural → Off), rung 2 turns it off.
    pub validation: ValidationMode,
    /// Extra ladder rungs a failed request may climb (0–2 are meaningful;
    /// the ladder tops out at rung 2).
    pub retries: u32,
    /// Per-function resource limits, enforced on every rung.
    pub limits: Limits,
    /// Base backoff before the first retry rung; doubles per rung, bounded
    /// by the request deadline.
    pub retry_backoff: Duration,
    /// Global degradation thresholds.
    pub degradation: DegradationConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            queue_capacity: 64,
            admission: AdmissionPolicy::Reject,
            default_deadline: None,
            max_admission_wait: None,
            options: OutOfSsaOptions::default(),
            validation: ValidationMode::Off,
            retries: 2,
            limits: Limits::default(),
            retry_backoff: Duration::from_micros(100),
            degradation: DegradationConfig::default(),
        }
    }
}

/// Why `submit` refused a request. The function is handed back in every
/// variant — a refused request loses nothing.
#[derive(Debug)]
pub enum SubmitError {
    /// The queue was full under [`AdmissionPolicy::Reject`].
    QueueFull(Function),
    /// The bounded [`AdmissionPolicy::Block`] wait expired with the queue
    /// still full.
    AdmissionTimeout(Function),
    /// The service is shutting down.
    ShuttingDown(Function),
}

impl SubmitError {
    /// Recovers the refused function.
    pub fn into_function(self) -> Function {
        match self {
            SubmitError::QueueFull(f)
            | SubmitError::AdmissionTimeout(f)
            | SubmitError::ShuttingDown(f) => f,
        }
    }
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull(_) => write!(f, "submission queue full"),
            SubmitError::AdmissionTimeout(_) => write!(f, "admission wait timed out"),
            SubmitError::ShuttingDown(_) => write!(f, "service shutting down"),
        }
    }
}

/// Why an *accepted* request did not complete.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// Every ladder rung failed; this is the final rung's error. The input
    /// function, restored to its pre-translation state, is returned in
    /// [`ServiceResponse::returned`].
    Translate(TranslateError),
    /// The request's deadline passed while it waited in the queue; it was
    /// never translated.
    ExpiredInQueue,
    /// The request was evicted by [`AdmissionPolicy::ShedOldest`] to admit
    /// newer work.
    Shed,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Translate(e) => write!(f, "translation failed: {e}"),
            ServiceError::ExpiredInQueue => write!(f, "deadline expired in queue"),
            ServiceError::Shed => write!(f, "shed under overload"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A successfully translated request.
#[derive(Debug)]
pub struct Completed {
    /// The translated function.
    pub func: Function,
    /// Engine statistics of the rung that produced the output, with
    /// `validation_failures` and `recovery` accumulated across the whole
    /// ladder.
    pub stats: OutOfSsaStats,
    /// Global degradation level the request started at (its first rung).
    pub level: u8,
    /// Ladder rung that produced the output (0 = configured options, 1 =
    /// conservative, 2 = minimal coalescing).
    pub rung: u8,
    /// Wall-clock seconds spent in the ladder (all rungs and backoffs).
    pub translate_seconds: f64,
}

/// The single reply every accepted request receives.
#[derive(Debug)]
pub struct ServiceResponse {
    /// The id `submit` returned in the [`Ticket`].
    pub id: u64,
    /// Translated function, or a typed reason there is none.
    pub outcome: Result<Completed, ServiceError>,
    /// On error, the input function handed back to the caller: untouched
    /// for [`ServiceError::Shed`] and [`ServiceError::ExpiredInQueue`],
    /// restored from the pristine snapshot for
    /// [`ServiceError::Translate`]. `None` on success (the translated
    /// function is in [`Completed::func`]).
    pub returned: Option<Function>,
    /// Seconds the request waited in the queue.
    pub queue_seconds: f64,
    /// Seconds from admission to reply.
    pub total_seconds: f64,
}

/// A claim on the eventual [`ServiceResponse`] of one accepted request.
pub struct Ticket {
    id: u64,
    rx: Receiver<ServiceResponse>,
}

impl Ticket {
    /// The service-assigned request id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the response arrives. Every accepted request is replied
    /// to — including across shutdown, which drains the queue with typed
    /// outcomes — so this never blocks forever on a live or draining
    /// service.
    pub fn wait(self) -> ServiceResponse {
        self.rx.recv().expect("service dropped an accepted request without replying")
    }

    /// Non-blocking poll; `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<ServiceResponse> {
        self.rx.try_recv().ok()
    }
}

struct Shared {
    queue: SharedQueue,
    config: ServiceConfig,
    /// Global degradation level (0, 1 or 2); plain reads are racy-but-safe,
    /// transitions serialize under the stats lock.
    level: AtomicU8,
    stats: Mutex<ServiceStats>,
}

impl Shared {
    /// Moves the degradation level one step toward the target the current
    /// queue depth calls for, recording the transition. `depth` must come
    /// from the same locked queue operation that triggered the evaluation
    /// so decisions are atomic with the load they were made under.
    fn reconcile_level(&self, depth: usize) {
        let deg = &self.config.degradation;
        if !deg.enabled() {
            return;
        }
        let mut stats = self.stats.lock().unwrap();
        let current = self.level.load(Ordering::Relaxed);
        let target = if depth >= deg.severe_depth {
            2
        } else if depth >= deg.degrade_depth {
            current.max(1)
        } else if depth <= deg.recover_depth {
            0
        } else {
            current
        };
        let next = match target.cmp(&current) {
            std::cmp::Ordering::Greater => current + 1,
            std::cmp::Ordering::Less => current - 1,
            std::cmp::Ordering::Equal => return,
        };
        self.level.store(next, Ordering::Relaxed);
        if next > current {
            stats.degraded_transitions += 1;
        } else {
            stats.recovered_transitions += 1;
        }
    }

    fn snapshot_stats(&self) -> ServiceStats {
        let mut snapshot = self.stats.lock().unwrap().clone();
        snapshot.level = self.level.load(Ordering::Relaxed);
        snapshot
    }
}

/// The options and validation mode of one absolute ladder rung.
fn rung_config(config: &ServiceConfig, rung: usize) -> (OutOfSsaOptions, ValidationMode) {
    match rung {
        0 => (config.options.clone(), config.validation),
        1 => (config.options.conservative_fallback(), drop_tier(config.validation)),
        _ => (config.options.minimal_coalescing(), ValidationMode::Off),
    }
}

/// Drops a validation mode one tier: Differential → Structural → Off.
fn drop_tier(mode: ValidationMode) -> ValidationMode {
    match mode {
        ValidationMode::Differential => ValidationMode::Structural,
        ValidationMode::Structural | ValidationMode::Off => ValidationMode::Off,
    }
}

/// A multi-worker out-of-SSA translation service with bounded admission,
/// per-request deadlines and a degradation ladder. See the
/// [module docs](self) for the overload model.
pub struct TranslationService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    next_id: AtomicU64,
}

impl TranslationService {
    /// Starts the service: spawns `config.workers` persistent workers and
    /// opens the submission queue.
    pub fn start(config: ServiceConfig) -> Self {
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            queue: SharedQueue::new(config.queue_capacity),
            config,
            level: AtomicU8::new(0),
            stats: Mutex::new(ServiceStats::default()),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("ossa-service-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn service worker")
            })
            .collect();
        Self { shared, workers: handles, next_id: AtomicU64::new(0) }
    }

    /// Submits a function under the configured default deadline.
    // The refused submission is handed back by value so the caller keeps
    // ownership of the function; the variants are as large as `Function`
    // by design and the path is cold.
    #[allow(clippy::result_large_err)]
    pub fn submit(&self, func: Function) -> Result<Ticket, SubmitError> {
        self.submit_with_deadline(func, self.shared.config.default_deadline)
    }

    /// Submits a function with an explicit deadline budget (`None`:
    /// unbounded) spanning queue wait and translation.
    // The refused submission is handed back by value so the caller keeps
    // ownership of the function; the variants are as large as `Function`
    // by design and the path is cold.
    #[allow(clippy::result_large_err)]
    pub fn submit_with_deadline(
        &self,
        func: Function,
        deadline: Option<Duration>,
    ) -> Result<Ticket, SubmitError> {
        let now = Instant::now();
        let absolute = deadline.map(|d| now + d);
        self.shared.stats.lock().unwrap().submitted += 1;

        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = sync_channel(1);
        let entry = QueueEntry { id, func, deadline: absolute, enqueued: now, reply: tx };

        let pushed = match self.shared.config.admission {
            AdmissionPolicy::Reject => self.shared.queue.push_reject(entry),
            AdmissionPolicy::ShedOldest => self.shared.queue.push_shed_oldest(entry),
            AdmissionPolicy::Block => {
                let wait_until = match (absolute, self.shared.config.max_admission_wait) {
                    (Some(d), Some(w)) => Some(d.min(now + w)),
                    (Some(d), None) => Some(d),
                    (None, Some(w)) => Some(now + w),
                    (None, None) => None,
                };
                self.shared.queue.push_block(entry, wait_until)
            }
        };

        match pushed {
            Ok(admitted) => {
                {
                    let mut stats = self.shared.stats.lock().unwrap();
                    stats.accepted += 1;
                    stats.max_queue_depth = stats.max_queue_depth.max(admitted.depth as u64);
                    if admitted.shed.is_some() {
                        stats.shed += 1;
                    }
                }
                if let Some(victim) = admitted.shed {
                    let waited = victim.enqueued.elapsed();
                    self.shared.stats.lock().unwrap().total.record(waited);
                    let _ = victim.reply.send(ServiceResponse {
                        id: victim.id,
                        outcome: Err(ServiceError::Shed),
                        returned: Some(victim.func),
                        queue_seconds: waited.as_secs_f64(),
                        total_seconds: waited.as_secs_f64(),
                    });
                }
                self.shared.reconcile_level(admitted.depth);
                Ok(Ticket { id, rx })
            }
            Err(PushRefusal::Full(entry)) => {
                let mut stats = self.shared.stats.lock().unwrap();
                let error = match self.shared.config.admission {
                    AdmissionPolicy::Block => {
                        stats.admission_timeouts += 1;
                        SubmitError::AdmissionTimeout(entry.func)
                    }
                    _ => {
                        stats.rejected_queue_full += 1;
                        SubmitError::QueueFull(entry.func)
                    }
                };
                Err(error)
            }
            Err(PushRefusal::Closed(entry)) => {
                self.shared.stats.lock().unwrap().rejected_shutdown += 1;
                Err(SubmitError::ShuttingDown(entry.func))
            }
        }
    }

    /// Current queue depth.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// Parks the workers without affecting admission — a deterministic
    /// overload throttle for tests; see [`TranslationService::resume`].
    pub fn pause(&self) {
        self.shared.queue.set_paused(true);
    }

    /// Releases workers parked by [`TranslationService::pause`].
    pub fn resume(&self) {
        self.shared.queue.set_paused(false);
    }

    /// A live statistics snapshot. Worker pool traffic is merged only at
    /// shutdown; everything else is current.
    pub fn stats(&self) -> ServiceStats {
        self.shared.snapshot_stats()
    }

    /// Shuts down: closes admission, drains the backlog (every queued
    /// request translates or expires, typed either way), joins the workers
    /// and returns the final statistics with the worker pools merged.
    pub fn shutdown(self) -> ServiceStats {
        self.shared.queue.close();
        for handle in self.workers {
            let _ = handle.join();
        }
        self.shared.snapshot_stats()
    }
}

fn worker_loop(shared: &Shared) {
    let mut engine = EngineWorker::new();
    while let Some((entry, depth)) = shared.queue.pop() {
        shared.reconcile_level(depth);
        serve(shared, &mut engine, entry);
    }
    let pool = engine.pool.stats();
    let mut stats = shared.stats.lock().unwrap();
    stats.pool.checkouts += pool.checkouts;
    stats.pool.recycled += pool.recycled;
    stats.pool.retired += pool.retired;
    stats.pool.discarded += pool.discarded;
}

/// Runs one accepted request through the deadline check and the ladder,
/// and sends its single reply.
fn serve(shared: &Shared, engine: &mut EngineWorker, entry: QueueEntry) {
    let dequeued = Instant::now();
    let waited = dequeued.saturating_duration_since(entry.enqueued);

    if entry.deadline.is_some_and(|d| dequeued >= d) {
        let mut stats = shared.stats.lock().unwrap();
        stats.expired_in_queue += 1;
        stats.queue_wait.record(waited);
        stats.total.record(waited);
        drop(stats);
        let _ = entry.reply.send(ServiceResponse {
            id: entry.id,
            outcome: Err(ServiceError::ExpiredInQueue),
            returned: Some(entry.func),
            queue_seconds: waited.as_secs_f64(),
            total_seconds: waited.as_secs_f64(),
        });
        return;
    }

    let level = shared.level.load(Ordering::Relaxed).min(2) as usize;
    {
        let mut stats = shared.stats.lock().unwrap();
        stats.per_level[level] += 1;
        stats.queue_wait.record(waited);
    }

    let start_rung = level;
    let last_rung = (start_rung + shared.config.retries as usize).min(2);
    let mut func = entry.func;
    let pristine = engine.pool.checkout_clone_of(&func);
    // A persistent worker's caches are stamped per function; invalidate
    // (never reallocate) between requests, like the pooled stream drivers.
    engine.analyses.invalidate_cfg();

    // The deadline is a property of the request: it spans every rung and
    // backoff, and is cleared before the worker touches the next request.
    fuel::set_deadline(entry.deadline);

    let mut validation_failures = 0usize;
    let mut last_error = None;
    let mut success = None;
    for rung in start_rung..=last_rung {
        if rung > start_rung {
            let backoff = shared.config.retry_backoff * (1u32 << (rung - start_rung - 1));
            let bounded = match entry.deadline {
                Some(d) => backoff.min(d.saturating_duration_since(Instant::now())),
                None => backoff,
            };
            if !bounded.is_zero() {
                thread::sleep(bounded);
            }
            func.clone_from(&pristine);
        }
        #[cfg(feature = "failpoints")]
        ossa_destruct::fault::failpoints::set_attempt_base(rung as u32);

        let (options, validation) = rung_config(&shared.config, rung);
        let policy = EnginePolicy { validation, recovery: RecoveryPolicy::retries(0) };
        match translate_function_isolated_policy_pooled(
            &mut func,
            &options,
            &shared.config.limits,
            &policy,
            engine,
        ) {
            Ok(stats) => {
                success = Some((stats, rung));
                break;
            }
            Err(error) => {
                if matches!(error, TranslateError::ValidationFailed { .. }) {
                    validation_failures += 1;
                }
                last_error = Some(error);
            }
        }
    }
    #[cfg(feature = "failpoints")]
    ossa_destruct::fault::failpoints::set_attempt_base(0);
    fuel::set_deadline(None);

    let finished = Instant::now();
    let translate_seconds = finished.saturating_duration_since(dequeued).as_secs_f64();
    let total = finished.saturating_duration_since(entry.enqueued);

    let response = match success {
        Some((mut rung_stats, rung)) => {
            rung_stats.validation_failures = validation_failures;
            if rung > start_rung {
                rung_stats.recovery =
                    RecoveryOutcome::Recovered { attempt: (rung - start_rung + 1) as u32 };
            }
            let mut stats = shared.stats.lock().unwrap();
            stats.completed += 1;
            if rung > start_rung {
                stats.recovered += 1;
            }
            stats.validation_failures += validation_failures as u64;
            stats.translate.record(finished.saturating_duration_since(dequeued));
            stats.total.record(total);
            drop(stats);
            engine.pool.retire(pristine);
            ServiceResponse {
                id: entry.id,
                outcome: Ok(Completed {
                    func,
                    stats: rung_stats,
                    level: level as u8,
                    rung: rung as u8,
                    translate_seconds,
                }),
                returned: None,
                queue_seconds: waited.as_secs_f64(),
                total_seconds: total.as_secs_f64(),
            }
        }
        None => {
            let error = last_error.expect("at least one rung ran");
            let mut stats = shared.stats.lock().unwrap();
            stats.failed += 1;
            if matches!(error, TranslateError::DeadlineExceeded { .. }) {
                stats.deadline_exceeded += 1;
            }
            stats.validation_failures += validation_failures as u64;
            stats.translate.record(finished.saturating_duration_since(dequeued));
            stats.total.record(total);
            drop(stats);
            // The final rung left `func` poisoned; hand the caller their
            // input back, restored from the pristine snapshot.
            func.clone_from(&pristine);
            engine.pool.retire(pristine);
            ServiceResponse {
                id: entry.id,
                outcome: Err(ServiceError::Translate(error)),
                returned: Some(func),
                queue_seconds: waited.as_secs_f64(),
                total_seconds: total.as_secs_f64(),
            }
        }
    };
    let _ = entry.reply.send(response);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ossa_cfggen::{generate_ssa_function, GenConfig};

    fn input(seed: u64) -> Function {
        generate_ssa_function(format!("svc_{seed}"), &GenConfig::default(), seed).0
    }

    #[test]
    fn round_trip_translates_and_replies_once_per_request() {
        let service = TranslationService::start(ServiceConfig {
            workers: 2,
            validation: ValidationMode::Structural,
            ..ServiceConfig::default()
        });
        let tickets: Vec<_> =
            (0..8).map(|seed| service.submit(input(seed)).expect("admitted")).collect();
        for ticket in tickets {
            let response = ticket.wait();
            let completed = response.outcome.expect("healthy input translates");
            assert_eq!(completed.rung, 0);
            assert_eq!(completed.level, 0);
        }
        let stats = service.shutdown();
        assert_eq!(stats.submitted, 8);
        assert_eq!(stats.accepted, 8);
        assert_eq!(stats.completed, 8);
        assert_eq!(stats.resolved(), 8);
        assert_eq!(stats.queue_wait.count(), 8);
        // Persistent workers: pristine snapshots recycled through the pool.
        assert!(stats.pool.checkouts >= 8);
        assert!(stats.pool.retired >= 8);
    }

    #[test]
    fn reject_admission_refuses_at_capacity_and_returns_the_function() {
        let service = TranslationService::start(ServiceConfig {
            workers: 1,
            queue_capacity: 2,
            ..ServiceConfig::default()
        });
        service.pause();
        let mut tickets = Vec::new();
        let mut rejected = 0;
        for seed in 0..5 {
            match service.submit(input(seed)) {
                Ok(t) => tickets.push(t),
                Err(SubmitError::QueueFull(func)) => {
                    assert_eq!(func.name, format!("svc_{seed}"));
                    rejected += 1;
                }
                Err(other) => panic!("unexpected refusal: {other}"),
            }
        }
        assert_eq!(tickets.len(), 2);
        assert_eq!(rejected, 3);
        service.resume();
        for ticket in tickets {
            assert!(ticket.wait().outcome.is_ok());
        }
        let stats = service.shutdown();
        assert_eq!(stats.rejected_queue_full, 3);
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn submitting_after_shutdown_is_typed() {
        let service = TranslationService::start(ServiceConfig::default());
        let shared = Arc::clone(&service.shared);
        let stats = service.shutdown();
        assert_eq!(stats.resolved(), 0);
        // The queue is closed; a late push refuses with ShuttingDown.
        let (tx, _rx) = sync_channel(1);
        let refusal = shared.queue.push_reject(QueueEntry {
            id: 99,
            func: input(0),
            deadline: None,
            enqueued: Instant::now(),
            reply: tx,
        });
        assert!(matches!(refusal, Err(PushRefusal::Closed(_))));
    }

    #[test]
    fn degradation_ladder_steps_up_under_scripted_depth_and_recovers() {
        let service = TranslationService::start(ServiceConfig {
            workers: 1,
            queue_capacity: 16,
            degradation: DegradationConfig { degrade_depth: 3, severe_depth: 5, recover_depth: 1 },
            ..ServiceConfig::default()
        });
        service.pause();
        let tickets: Vec<_> =
            (0..6).map(|seed| service.submit(input(seed)).expect("admitted")).collect();
        // Depth walked 1..=6: level stepped 0→1 at depth 3 and 1→2 at 5.
        assert_eq!(service.stats().level, 2);
        assert_eq!(service.stats().degraded_transitions, 2);
        service.resume();
        let responses: Vec<_> = tickets.into_iter().map(Ticket::wait).collect();
        for response in &responses {
            assert!(response.outcome.is_ok());
        }
        // Later requests started at a degraded level, on a higher rung.
        assert!(responses.iter().any(|r| r.outcome.as_ref().unwrap().level > 0));
        let stats = service.shutdown();
        // The drain brought the depth back under recover_depth: the level
        // stepped down (2→1→0 takes two evaluations; at least one ran).
        assert!(stats.recovered_transitions >= 1);
        assert_eq!(stats.completed, 6);
    }
}
