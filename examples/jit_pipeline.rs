//! A miniature JIT middle-end pipeline over a simulated SPEC-like workload:
//! non-SSA input → SSA construction → copy propagation (which breaks
//! conventionality) → out-of-SSA translation → linear-scan register
//! allocation.
//!
//! Run with `cargo run --example jit_pipeline`.

use out_of_ssa::cfggen::{generate_function, pin_call_conventions, GenConfig};
use out_of_ssa::destruct::{translate_out_of_ssa, OutOfSsaOptions};
use out_of_ssa::interp::{same_behaviour, Interpreter};
use out_of_ssa::regalloc::{allocate, check_allocation};
use out_of_ssa::ssa::{construct_ssa, eliminate_dead_code, is_conventional, propagate_copies};

fn main() {
    let config = GenConfig { num_stmts: 60, num_vars: 10, ..GenConfig::default() };
    let mut total_spills = 0usize;
    let mut total_copies = 0usize;

    for seed in 0..8u64 {
        // 1. Front end: a function in mutable virtual-register form.
        let mut func = generate_function(format!("jit::fn{seed}"), &config, seed);
        let reference = func.clone();

        // 2. Middle end: SSA construction + optimizations.
        let construction = construct_ssa(&mut func);
        let prop = propagate_copies(&mut func);
        eliminate_dead_code(&mut func);
        let conventional = is_conventional(&func);

        // 3. Renaming constraints from the calling convention.
        pin_call_conventions(&mut func);

        // 4. Back end: out-of-SSA translation, then register allocation.
        let ssa_form = func.clone();
        let stats = translate_out_of_ssa(&mut func, &OutOfSsaOptions::default());
        let allocation = allocate(&func, 8);
        check_allocation(&func, &allocation, 8).expect("allocation verifies");

        // 5. The whole pipeline preserves behaviour.
        for args in [[1, 2, 3], [5, 0, -3], [9, 9, 9]] {
            let a = Interpreter::new().run(&reference, &args).expect("reference runs");
            let c = Interpreter::new().run(&ssa_form, &args).expect("ssa runs");
            let b = Interpreter::new().run(&func, &args).expect("translated runs");
            assert!(same_behaviour(&a, &b) && same_behaviour(&c, &b), "pipeline miscompiled fn{seed}");
        }

        println!(
            "fn{seed}: {} phis, {} copies propagated, conventional after opt: {}, \
             {} copies remain, {} registers used, {} spills",
            construction.phis_inserted,
            prop.copies_removed,
            conventional,
            stats.remaining_copies,
            allocation.registers_used(),
            allocation.spills
        );
        total_spills += allocation.spills;
        total_copies += stats.remaining_copies;
    }
    println!("\ntotal remaining copies: {total_copies}, total spills: {total_spills}");
}
