//! A miniature JIT middle-end pipeline over a simulated SPEC-like workload:
//! non-SSA input → SSA construction → copy propagation (which breaks
//! conventionality) → batch out-of-SSA translation (parallel corpus engine)
//! → linear-scan register allocation over shared cached analyses.
//!
//! Run with `cargo run --example jit_pipeline`.

use out_of_ssa::cfggen::{generate_function, pin_call_conventions, GenConfig};
use out_of_ssa::destruct::{translate_corpus, translate_out_of_ssa_cached, OutOfSsaOptions};
use out_of_ssa::interp::{same_behaviour, Interpreter};
use out_of_ssa::liveness::FunctionAnalyses;
use out_of_ssa::regalloc::{allocate_cached, check_allocation};
use out_of_ssa::ssa::{construct_ssa, eliminate_dead_code, is_conventional, propagate_copies};

fn main() {
    let config = GenConfig { num_stmts: 60, num_vars: 10, ..GenConfig::default() };
    let num_funcs = 8u64;
    let options = OutOfSsaOptions::default();

    // 1. Front end: functions in mutable virtual-register form.
    let references: Vec<_> = (0..num_funcs)
        .map(|seed| generate_function(format!("jit::fn{seed}"), &config, seed))
        .collect();

    // 2. Middle end: SSA construction + optimizations, per function.
    let mut funcs = references.clone();
    let mut middle_end_stats = Vec::new();
    for func in &mut funcs {
        let construction = construct_ssa(func);
        let prop = propagate_copies(func);
        eliminate_dead_code(func);
        let conventional = is_conventional(func);
        // 3. Renaming constraints from the calling convention.
        pin_call_conventions(func);
        middle_end_stats.push((construction.phis_inserted, prop.copies_removed, conventional));
    }
    let ssa_forms = funcs.clone();

    // 4. Back end, batch flavour: the whole queue goes through the parallel
    //    out-of-SSA engine (one analysis cache per function, functions
    //    translated in parallel).
    let corpus_stats = translate_corpus(&mut funcs, &options);

    // 5. Back end, shared-cache flavour: each function is also translated
    //    serially through one `FunctionAnalyses` that then feeds register
    //    allocation — the CFG-level analyses computed during translation
    //    survive it and are reused by `allocate_cached`. Both flavours must
    //    agree exactly.
    let mut analyses = FunctionAnalyses::new();
    let mut total_spills = 0usize;
    let mut total_copies = 0usize;
    for (seed, func) in funcs.iter().enumerate() {
        analyses.invalidate_cfg();
        let mut serial = ssa_forms[seed].clone();
        let serial_stats = translate_out_of_ssa_cached(&mut serial, &options, &mut analyses);
        assert_eq!(&serial, func, "batch and serial translation disagree on fn{seed}");
        assert_eq!(serial_stats, corpus_stats.per_function[seed]);

        let allocation = allocate_cached(func, 8, &analyses);
        check_allocation(func, &allocation, 8).expect("allocation verifies");

        // 6. The whole pipeline preserves behaviour.
        for args in [[1, 2, 3], [5, 0, -3], [9, 9, 9]] {
            let a = Interpreter::new().run(&references[seed], &args).expect("reference runs");
            let c = Interpreter::new().run(&ssa_forms[seed], &args).expect("ssa runs");
            let b = Interpreter::new().run(func, &args).expect("translated runs");
            assert!(
                same_behaviour(&a, &b) && same_behaviour(&c, &b),
                "pipeline miscompiled fn{seed}"
            );
        }

        let (phis, propagated, conventional) = middle_end_stats[seed];
        let stats = &corpus_stats.per_function[seed];
        println!(
            "fn{seed}: {phis} phis, {propagated} copies propagated, conventional after opt: \
             {conventional}, {} copies remain, {} registers used, {} spills",
            stats.remaining_copies,
            allocation.registers_used(),
            allocation.spills
        );
        total_spills += allocation.spills;
        total_copies += stats.remaining_copies;
    }
    println!(
        "\ntranslated {} functions on {} threads; total remaining copies: {total_copies}, \
         total spills: {total_spills}",
        corpus_stats.per_function.len(),
        corpus_stats.threads
    );
}
