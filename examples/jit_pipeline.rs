//! A miniature JIT middle-end over a simulated SPEC-like workload, built on
//! the unified [`Pipeline`] pass manager: non-SSA input → SSA construction →
//! copy propagation (which breaks conventionality) → dead-code elimination →
//! CSSA check → calling-convention pins → out-of-SSA translation →
//! linear-scan register allocation — all passes sharing **one** analysis
//! cache with per-pass invalidation, its storage recycled across functions.
//!
//! The same queue is also drained through the batch corpus engine
//! (`translate_corpus`, parallel workers) and the streaming front end
//! (`translate_stream`, fed from an iterator as a JIT queue would); all
//! three flavours must agree bit-for-bit.
//!
//! Run with `cargo run --example jit_pipeline`.

use out_of_ssa::cfggen::{generate_function, pin_call_conventions, GenConfig};
use out_of_ssa::destruct::{translate_corpus, translate_stream, OutOfSsaOptions};
use out_of_ssa::interp::{same_behaviour, Interpreter};
use out_of_ssa::regalloc::check_allocation;
use out_of_ssa::ssa::{construct_ssa, eliminate_dead_code, propagate_copies};
use out_of_ssa::Pipeline;

fn main() {
    let config = GenConfig { num_stmts: 60, num_vars: 10, ..GenConfig::default() };
    let num_funcs = 8u64;
    let options = OutOfSsaOptions::default();

    // 1. Front end: functions in mutable virtual-register form.
    let references: Vec<_> = (0..num_funcs)
        .map(|seed| generate_function(format!("jit::fn{seed}"), &config, seed))
        .collect();

    // 2. The unified pipeline, one function after the other through the same
    //    `Pipeline` — its analysis cache and translation scratch are
    //    invalidated (not reallocated) between functions.
    let mut pipeline = Pipeline::new(options.clone()).with_registers(8);
    let mut funcs = references.clone();
    let reports: Vec<_> = funcs
        .iter_mut()
        .map(|func| {
            pipeline.run_with(func, |f| {
                pin_call_conventions(f);
            })
        })
        .collect();

    // 3. The batch and streaming engines get the same middle-end output (here
    //    rebuilt with the standalone passes) and must reproduce the
    //    pipeline's back end exactly: batch from a materialized slice on the
    //    parallel worker pool, streaming from a lazy iterator as a JIT queue
    //    would feed it.
    let mut ssa_forms = references.clone();
    for func in &mut ssa_forms {
        construct_ssa(func);
        propagate_copies(func);
        eliminate_dead_code(func);
        pin_call_conventions(func);
    }
    let mut batch = ssa_forms.clone();
    let corpus_stats = translate_corpus(&mut batch, &options);
    let (streamed, stream_stats) = translate_stream(ssa_forms.iter().cloned(), &options);

    let mut total_spills = 0usize;
    let mut total_copies = 0usize;
    for (seed, report) in reports.iter().enumerate() {
        assert_eq!(&funcs[seed], &batch[seed], "pipeline and batch disagree on fn{seed}");
        assert_eq!(&streamed[seed], &batch[seed], "streaming and batch disagree on fn{seed}");
        assert_eq!(report.translation, corpus_stats.per_function[seed]);
        assert_eq!(stream_stats.per_function[seed], corpus_stats.per_function[seed]);

        let allocation = report.allocation.as_ref().expect("allocation configured");
        check_allocation(&funcs[seed], allocation, 8).expect("allocation verifies");

        // 4. The whole pipeline preserves behaviour, at every stage.
        for args in [[1, 2, 3], [5, 0, -3], [9, 9, 9]] {
            let a = Interpreter::new().run(&references[seed], &args).expect("reference runs");
            let c = Interpreter::new().run(&ssa_forms[seed], &args).expect("ssa form runs");
            let b = Interpreter::new().run(&funcs[seed], &args).expect("translated runs");
            assert!(
                same_behaviour(&a, &b) && same_behaviour(&c, &b),
                "pipeline miscompiled fn{seed}"
            );
        }

        println!(
            "fn{seed}: {} phis, {} copies propagated, conventional after opt: {}, {} copies \
             remain, {} registers used, {} spills",
            report.construction.phis_inserted,
            report.copy_propagation.copies_removed,
            report.conventional_after_opt.unwrap_or(false),
            report.translation.remaining_copies,
            allocation.registers_used(),
            allocation.spills
        );
        total_spills += allocation.spills;
        total_copies += report.translation.remaining_copies;
    }

    let counts = pipeline.counts();
    println!(
        "\ntranslated {} functions (batch on {} threads, stream on {}); total remaining copies: \
         {total_copies}, total spills: {total_spills}",
        reports.len(),
        corpus_stats.threads,
        stream_stats.threads,
    );
    println!(
        "pipeline analysis computations over {} CFG versions: cfg {}, domtree {}, frontiers {}, \
         fast-liveness {}, liveness-sets {} / {} instruction versions — nothing computed twice \
         per version",
        counts.ir.cfg_versions,
        counts.ir.cfg,
        counts.ir.domtree,
        counts.ir.frontiers,
        counts.fast_liveness,
        counts.liveness_sets,
        counts.inst_versions,
    );
}
