//! The two classic out-of-SSA pitfalls — the *lost copy* and *swap* problems
//! (Figures 3 and 4 of the paper) — translated with several coalescing
//! strategies, showing how the value-based interference removes more copies
//! while staying correct.
//!
//! Run with `cargo run --example lost_copy_and_swap`.

use out_of_ssa::destruct::{translate_out_of_ssa, OutOfSsaOptions};
use out_of_ssa::interp::{same_behaviour, Interpreter};
use out_of_ssa::ir::builder::FunctionBuilder;
use out_of_ssa::ir::{BinaryOp, CmpOp, Function, InstData};

/// Lost-copy problem: the φ result escapes the loop while its argument is
/// redefined every iteration.
fn lost_copy() -> Function {
    let mut b = FunctionBuilder::new("lost_copy", 1);
    let entry = b.create_block();
    let header = b.create_block();
    let exit = b.create_block();
    b.set_entry(entry);
    b.switch_to_block(entry);
    let p = b.param(0);
    let x1 = b.iconst(1);
    b.jump(header);
    b.switch_to_block(header);
    let x3 = b.declare_value();
    let i_next = b.declare_value();
    let x2 = b.phi(vec![(entry, x1), (header, x3)]);
    let i = b.phi(vec![(entry, p), (header, i_next)]);
    let one = b.iconst(1);
    b.func_mut()
        .append_inst(header, InstData::Binary { op: BinaryOp::Add, dst: x3, args: [x2, one] });
    b.func_mut()
        .append_inst(header, InstData::Binary { op: BinaryOp::Sub, dst: i_next, args: [i, one] });
    let zero = b.iconst(0);
    let c = b.cmp(CmpOp::Gt, i_next, zero);
    b.branch(c, header, exit);
    b.switch_to_block(exit);
    b.ret(Some(x2));
    b.finish()
}

/// Swap problem: two φs exchange their values every iteration.
fn swap() -> Function {
    let mut b = FunctionBuilder::new("swap", 1);
    let entry = b.create_block();
    let header = b.create_block();
    let exit = b.create_block();
    b.set_entry(entry);
    b.switch_to_block(entry);
    let p = b.param(0);
    let a1 = b.iconst(1);
    let b1 = b.iconst(2);
    b.jump(header);
    b.switch_to_block(header);
    let a2 = b.declare_value();
    let b2 = b.declare_value();
    let i_next = b.declare_value();
    b.phi_to(a2, vec![(entry, a1), (header, b2)]);
    b.phi_to(b2, vec![(entry, b1), (header, a2)]);
    let i = b.phi(vec![(entry, p), (header, i_next)]);
    let one = b.iconst(1);
    b.func_mut()
        .append_inst(header, InstData::Binary { op: BinaryOp::Sub, dst: i_next, args: [i, one] });
    let zero = b.iconst(0);
    let c = b.cmp(CmpOp::Gt, i_next, zero);
    b.branch(c, header, exit);
    b.switch_to_block(exit);
    let ten = b.iconst(10);
    let scaled = b.binary(BinaryOp::Mul, a2, ten);
    let packed = b.binary(BinaryOp::Add, scaled, b2);
    b.ret(Some(packed));
    b.finish()
}

fn run_variants(name: &str, original: &Function) {
    println!("==== {name} ====");
    println!("SSA input:\n{}\n", original.display());
    let variants: Vec<(&str, OutOfSsaOptions)> = vec![
        ("Intersect", OutOfSsaOptions::intersect()),
        ("Sreedhar I", OutOfSsaOptions::sreedhar_i()),
        ("Chaitin", OutOfSsaOptions::chaitin()),
        ("Value", OutOfSsaOptions::value()),
        ("Sreedhar III", OutOfSsaOptions::sreedhar_iii()),
        ("Value + IS", OutOfSsaOptions::value_is()),
        ("Sharing", OutOfSsaOptions::sharing()),
    ];
    for (label, options) in variants {
        let mut translated = original.clone();
        let stats = translate_out_of_ssa(&mut translated, &options);
        // Check behavioural equivalence on a few inputs.
        for input in [1, 2, 5] {
            let a = Interpreter::new().run(original, &[input]).expect("original runs");
            let b = Interpreter::new().run(&translated, &[input]).expect("translated runs");
            assert!(same_behaviour(&a, &b), "{label} miscompiled {name}");
        }
        println!(
            "{label:>14}: {} copies remain (weighted {:.0})",
            stats.remaining_copies, stats.remaining_weighted
        );
    }
    let mut best = original.clone();
    translate_out_of_ssa(&mut best, &OutOfSsaOptions::sharing());
    println!("\nbest translation:\n{}\n", best.display());
}

fn main() {
    run_variants("lost copy problem", &lost_copy());
    run_variants("swap problem", &swap());
}
