//! The branch-with-decrement corner case (Figure 2 of the paper): a DSP-style
//! hardware loop whose terminator both uses and defines the loop counter. No
//! copy can be inserted after that definition, so the out-of-SSA translation
//! must split the incoming edge instead.
//!
//! Run with `cargo run --example brdec_hardware_loop`.

use out_of_ssa::destruct::{translate_out_of_ssa, OutOfSsaOptions};
use out_of_ssa::interp::{same_behaviour, Interpreter};
use out_of_ssa::ir::builder::FunctionBuilder;
use out_of_ssa::ir::{BinaryOp, Function, InstData};

/// Builds the Figure 2 situation: `t1 = φ(t0, t2)` where the other φ
/// argument of the loop (`u`) is defined by the `br_dec` terminator.
fn hardware_loop() -> Function {
    let mut b = FunctionBuilder::new("br_dec_loop", 1);
    let entry = b.create_block();
    let body = b.create_block();
    let exit = b.create_block();
    b.set_entry(entry);

    b.switch_to_block(entry);
    let n = b.param(0);
    let zero = b.iconst(0);
    b.jump(body);

    b.switch_to_block(body);
    let u_dec = b.declare_value();
    let t2 = b.declare_value();
    let u = b.phi(vec![(entry, n), (body, u_dec)]);
    let t1 = b.phi(vec![(entry, zero), (body, t2)]);
    b.func_mut().append_inst(body, InstData::Binary { op: BinaryOp::Add, dst: t2, args: [t1, u] });
    b.func_mut().append_inst(
        body,
        InstData::BrDec { counter: u, dec: u_dec, loop_dest: body, exit_dest: exit },
    );

    b.switch_to_block(exit);
    let result = b.binary(BinaryOp::Add, t2, u_dec);
    b.ret(Some(result));
    b.finish()
}

fn main() {
    let original = hardware_loop();
    println!(
        "SSA input (note the br_dec terminator defining the decremented counter):\n{}\n",
        original.display()
    );

    let mut translated = original.clone();
    let stats = translate_out_of_ssa(&mut translated, &OutOfSsaOptions::default());

    println!("translated:\n{}\n", translated.display());
    println!(
        "edges split: {} (copy insertion alone cannot handle the br_dec argument)",
        stats.edges_split
    );
    assert!(stats.edges_split >= 1, "the br_dec corner case must split an edge");

    for n in [2i64, 3, 7] {
        let a = Interpreter::new().run(&original, &[n]).expect("original runs");
        let b = Interpreter::new().run(&translated, &[n]).expect("translated runs");
        assert!(same_behaviour(&a, &b));
        println!("f({n}) = {:?}", b.returned.unwrap());
    }
    println!("\nbehaviour preserved on all tested inputs");
}
