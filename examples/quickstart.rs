//! Quickstart: build a small SSA function, translate it out of SSA and print
//! both forms.
//!
//! Run with `cargo run --example quickstart`.

use out_of_ssa::destruct::{translate_out_of_ssa, OutOfSsaOptions};
use out_of_ssa::interp::Interpreter;
use out_of_ssa::ir::builder::FunctionBuilder;
use out_of_ssa::ir::{verify_ssa, BinaryOp, CmpOp};

fn main() {
    // sum(n) = 0 + 1 + ... + (n-1), written directly in SSA form.
    let mut b = FunctionBuilder::new("sum", 1);
    let entry = b.create_block();
    let header = b.create_block();
    let body = b.create_block();
    let exit = b.create_block();
    b.set_entry(entry);

    b.switch_to_block(entry);
    let n = b.param(0);
    let zero = b.iconst(0);
    b.jump(header);

    b.switch_to_block(header);
    let i_next = b.declare_value();
    let acc_next = b.declare_value();
    let i = b.phi(vec![(entry, zero), (body, i_next)]);
    let acc = b.phi(vec![(entry, zero), (body, acc_next)]);
    let more = b.cmp(CmpOp::Lt, i, n);
    b.branch(more, body, exit);

    b.switch_to_block(body);
    let one = b.iconst(1);
    b.func_mut().append_inst(
        body,
        out_of_ssa::ir::InstData::Binary { op: BinaryOp::Add, dst: acc_next, args: [acc, i] },
    );
    b.func_mut().append_inst(
        body,
        out_of_ssa::ir::InstData::Binary { op: BinaryOp::Add, dst: i_next, args: [i, one] },
    );
    b.jump(header);

    b.switch_to_block(exit);
    b.ret(Some(acc));
    let mut func = b.finish();
    verify_ssa(&func).expect("the input is valid SSA");

    println!("=== SSA form ===\n{}\n", func.display());

    let original = func.clone();
    let stats = translate_out_of_ssa(&mut func, &OutOfSsaOptions::default());

    println!("=== after out-of-SSA translation ===\n{}\n", func.display());
    println!(
        "phis removed: {}   copies inserted: {}   copies remaining: {}",
        stats.phis_removed, stats.moves_inserted, stats.remaining_copies
    );

    // The translation preserves behaviour.
    for n in [0i64, 1, 5, 10] {
        let before = Interpreter::new().run(&original, &[n]).expect("runs");
        let after = Interpreter::new().run(&func, &[n]).expect("runs");
        assert_eq!(before.returned, after.returned);
        println!("sum({n}) = {:?}", after.returned.unwrap());
    }
}
