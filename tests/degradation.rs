//! Graceful degradation on irreducible control flow.
//!
//! The fast liveness checker (Boissinot et al.'s query-based backend)
//! assumes a *reducible* CFG: it classifies an edge `s → t` as a back edge
//! iff `t` dominates `s`, which misclassifies the retreating edges of a
//! multi-entry cycle and makes its reduced graph cyclic — the precomputed
//! sets become unsound. Instead of producing wrong interference answers, the
//! translation detects irreducibility (an O(edges) scan over the cached
//! RPO numbering and dominator tree) and demotes
//! `InterferenceMode::InterCheckLiveCheck` to the data-flow
//! `LivenessSets` backend, recording the demotion in
//! [`OutOfSsaStats::liveness_fallbacks`]. These tests pin the fallback with
//! the reference interpreter as a semantic oracle.

use out_of_ssa::cfggen::{generate_function, to_optimized_ssa, GenConfig};
use out_of_ssa::destruct::{translate_out_of_ssa, ClassCheck, InterferenceMode, OutOfSsaOptions};
use out_of_ssa::interp::{same_behaviour, Interpreter};
use out_of_ssa::ir::{verify_cfg, ControlFlowGraph, DominatorTree};
use out_of_ssa::Pipeline;

fn irreducible_config() -> GenConfig {
    GenConfig { irreducible_density: 0.6, ..GenConfig::small() }
}

fn is_reducible(func: &out_of_ssa::ir::Function) -> bool {
    let cfg = ControlFlowGraph::compute(func);
    let domtree = DominatorTree::compute(func, &cfg);
    cfg.is_reducible(&domtree)
}

#[test]
fn irreducible_functions_fall_back_to_liveness_sets_and_stay_correct() {
    // The shared deterministic argument sets (also used by the runtime
    // differential validator).
    let inputs = out_of_ssa::interp::argument_sets(2009, 4, 3);
    let mut exercised = 0;
    for seed in 0..12u64 {
        let original = generate_function(format!("irr{seed}"), &irreducible_config(), seed);
        if is_reducible(&original) {
            continue;
        }
        exercised += 1;
        let expected: Vec<_> = inputs
            .iter()
            .map(|args| Interpreter::new().run(&original, args).expect("original runs"))
            .collect();

        // The full pipeline with the *default* options, whose interference
        // mode is the fast checker: the demotion must be visible in the
        // report and the translated code must still agree with the oracle.
        let mut translated = original.clone();
        let report = Pipeline::new(OutOfSsaOptions::default()).run(&mut translated);
        assert_eq!(
            report.translation.liveness_fallbacks, 1,
            "seed {seed}: irreducible CFG did not demote the fast checker"
        );
        verify_cfg(&translated).expect("translated code is structurally valid");
        assert_eq!(translated.count_phis(), 0, "seed {seed}: phis remain");
        for (args, want) in inputs.iter().zip(&expected) {
            let got = Interpreter::new().run(&translated, args).expect("translated runs");
            assert!(
                same_behaviour(want, &got),
                "seed {seed} differs on {args:?}\n{}",
                translated.display()
            );
        }
    }
    assert!(exercised >= 8, "only {exercised}/12 seeds were irreducible");
}

#[test]
fn fallback_output_matches_an_explicit_liveness_sets_run() {
    // The demotion is exactly `InterCheckLiveCheck → InterCheck`: translating
    // with the fast checker requested must produce bit-identical code and
    // statistics (fallback counter aside) to requesting the sets backend
    // explicitly.
    let mut pinned = 0;
    for seed in 0..12u64 {
        let mut func = generate_function(format!("pin{seed}"), &irreducible_config(), seed);
        if is_reducible(&func) {
            continue;
        }
        pinned += 1;
        to_optimized_ssa(&mut func);

        let fast = OutOfSsaOptions::default()
            .with_interference(InterferenceMode::InterCheckLiveCheck)
            .with_class_check(ClassCheck::Linear);
        let sets = OutOfSsaOptions::default()
            .with_interference(InterferenceMode::InterCheck)
            .with_class_check(ClassCheck::Linear);

        let mut demoted = func.clone();
        let mut explicit = func.clone();
        let mut demoted_stats = translate_out_of_ssa(&mut demoted, &fast);
        let explicit_stats = translate_out_of_ssa(&mut explicit, &sets);
        assert_eq!(demoted_stats.liveness_fallbacks, 1, "seed {seed}");
        assert_eq!(explicit_stats.liveness_fallbacks, 0, "seed {seed}");
        demoted_stats.liveness_fallbacks = 0;
        assert_eq!(demoted, explicit, "seed {seed}: demoted code differs");
        assert_eq!(demoted_stats, explicit_stats, "seed {seed}: demoted stats differ");
    }
    assert!(pinned >= 8, "only {pinned}/12 seeds were irreducible");
}

#[test]
fn reducible_functions_never_pay_the_fallback() {
    for seed in 0..8u64 {
        let mut func = generate_function(format!("red{seed}"), &GenConfig::small(), seed);
        assert!(is_reducible(&func), "seed {seed}: default config went irreducible");
        to_optimized_ssa(&mut func);
        let stats = translate_out_of_ssa(&mut func, &OutOfSsaOptions::default());
        assert_eq!(stats.liveness_fallbacks, 0, "seed {seed}: spurious fallback");
    }
}
