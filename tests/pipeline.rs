//! Cross-crate integration tests: the full pipeline on the simulated corpus.

use out_of_ssa::cfggen::{
    generate_ssa_function, pin_call_conventions, spec_like_corpus, GenConfig,
};
use out_of_ssa::destruct::{
    translate_corpus, translate_corpus_serial, translate_corpus_with, translate_out_of_ssa,
    translate_stream, ClassCheck, InterferenceMode, OutOfSsaOptions,
};
use out_of_ssa::interp::{same_behaviour, Interpreter};
use out_of_ssa::ir::{verify_cfg, verify_ssa};
use out_of_ssa::regalloc::{allocate, check_allocation};
use out_of_ssa::ssa::is_conventional;

/// The shared Figure 5 list (single source of truth, so a new bench variant
/// cannot silently miss oracle coverage) plus the engine-only configurations
/// that matter for behaviour.
fn variants() -> Vec<(&'static str, OutOfSsaOptions)> {
    let mut variants: Vec<(&'static str, OutOfSsaOptions)> =
        OutOfSsaOptions::figure5_variants().into_iter().collect();
    variants.extend([
        ("us_i_graph", OutOfSsaOptions::us_i()),
        ("us_iii_graph", OutOfSsaOptions::us_iii()),
        (
            "us_i_fast",
            OutOfSsaOptions::us_i()
                .with_interference(InterferenceMode::InterCheckLiveCheck)
                .with_class_check(ClassCheck::Linear),
        ),
    ]);
    variants
}

#[test]
fn every_variant_preserves_behaviour_on_generated_functions() {
    let inputs: Vec<Vec<i64>> =
        vec![vec![0, 0, 0], vec![1, 2, 3], vec![7, -3, 11], vec![42, 5, -9]];
    for seed in 0..12u64 {
        let (original, _) = generate_ssa_function(format!("prop{seed}"), &GenConfig::small(), seed);
        verify_ssa(&original).expect("generated SSA is valid");
        let expected: Vec<_> = inputs
            .iter()
            .map(|args| Interpreter::new().run(&original, args).expect("original runs"))
            .collect();
        for (name, options) in variants() {
            let mut translated = original.clone();
            let stats = translate_out_of_ssa(&mut translated, &options);
            verify_cfg(&translated).expect("translated code is structurally valid");
            assert_eq!(translated.count_phis(), 0, "{name}: phis remain for seed {seed}");
            assert!(stats.remaining_copies <= stats.moves_inserted + 4);
            for (args, want) in inputs.iter().zip(&expected) {
                let got = Interpreter::new().run(&translated, args).expect("translated runs");
                assert!(
                    same_behaviour(want, &got),
                    "{name}: seed {seed} differs on {args:?}\n{}",
                    translated.display()
                );
            }
        }
    }
}

#[test]
fn copy_insertion_restores_conventionality_on_the_corpus() {
    let corpus = spec_like_corpus(0.1, false);
    let mut checked = 0;
    for workload in &corpus {
        for func in workload.functions.iter().take(2) {
            let mut inserted = func.clone();
            out_of_ssa::destruct::insert_phi_copies(&mut inserted);
            verify_ssa(&inserted).expect("valid SSA after insertion");
            assert!(is_conventional(&inserted), "{} not CSSA after Method I", func.name);
            checked += 1;
        }
    }
    assert!(checked >= 11, "checked only {checked} corpus functions");
}

#[test]
fn linear_and_quadratic_class_checks_coalesce_equally_well() {
    for seed in 20..30u64 {
        let (original, _) = generate_ssa_function(format!("lin{seed}"), &GenConfig::small(), seed);
        let mut linear = original.clone();
        let mut quadratic = original.clone();
        let l = translate_out_of_ssa(
            &mut linear,
            &OutOfSsaOptions::value().with_class_check(ClassCheck::Linear),
        );
        let q = translate_out_of_ssa(
            &mut quadratic,
            &OutOfSsaOptions::value().with_class_check(ClassCheck::Quadratic),
        );
        assert_eq!(
            l.remaining_copies, q.remaining_copies,
            "seed {seed}: linear and quadratic checks disagree"
        );
    }
}

#[test]
fn value_strategy_never_leaves_more_copies_than_intersection() {
    let corpus = spec_like_corpus(0.08, false);
    let mut total_intersect = 0usize;
    let mut total_value = 0usize;
    for workload in &corpus {
        for func in workload.functions.iter().take(2) {
            let mut a = func.clone();
            let mut b = func.clone();
            total_intersect +=
                translate_out_of_ssa(&mut a, &OutOfSsaOptions::intersect()).remaining_copies;
            total_value +=
                translate_out_of_ssa(&mut b, &OutOfSsaOptions::sharing()).remaining_copies;
        }
    }
    assert!(
        total_value <= total_intersect,
        "value/sharing left {total_value} copies vs {total_intersect} for intersection"
    );
}

#[test]
fn pinned_pipeline_allocates_and_preserves_behaviour() {
    for seed in 40..46u64 {
        let (mut func, _) = generate_ssa_function(format!("pin{seed}"), &GenConfig::small(), seed);
        pin_call_conventions(&mut func);
        let original = func.clone();
        translate_out_of_ssa(&mut func, &OutOfSsaOptions::default());
        let allocation = allocate(&func, 8);
        check_allocation(&func, &allocation, 8).expect("allocation verifies");
        for args in [vec![3, 1, 4], vec![-2, 0, 6]] {
            let a = Interpreter::new().run(&original, &args).expect("original");
            let b = Interpreter::new().run(&func, &args).expect("translated");
            assert!(same_behaviour(&a, &b), "seed {seed} differs");
        }
    }
}

#[test]
fn batch_corpus_translation_matches_serial_per_function() {
    // The corpus engine (parallel) must produce exactly the same functions
    // and statistics as the serial per-function entry point.
    let corpus = spec_like_corpus(0.08, true);
    let functions: Vec<_> = corpus.iter().flat_map(|w| w.functions.iter().cloned()).collect();

    let options = OutOfSsaOptions::default();
    let mut serial = functions.clone();
    let serial_stats: Vec<_> =
        serial.iter_mut().map(|f| translate_out_of_ssa(f, &options)).collect();

    let mut batch = functions.clone();
    let batch_stats = translate_corpus(&mut batch, &options);
    assert_eq!(serial_stats, batch_stats.per_function);
    assert_eq!(serial, batch);

    // The serial batch path and an explicit two-thread run agree as well.
    let mut batch_serial = functions.clone();
    let a = translate_corpus_serial(&mut batch_serial, &options);
    let mut batch_two = functions.clone();
    let b = translate_corpus_with(&mut batch_two, &options, 2);
    assert_eq!(a.per_function, b.per_function);
    assert_eq!(batch_serial, batch_two);
}

#[test]
fn streaming_engine_is_bit_identical_to_batch_on_the_full_corpus() {
    // Acceptance bar of the streaming front end: on the scale-1.0 corpus —
    // the same corpus the Figure 5/6 numbers are produced from — the
    // streaming engine's output (functions and statistics) is bit-identical
    // to `translate_corpus`, for every one of the seven Figure 5 variants.
    let corpus = spec_like_corpus(1.0, true);
    let functions: Vec<_> = corpus.iter().flat_map(|w| w.functions.iter().cloned()).collect();

    for (name, options) in OutOfSsaOptions::figure5_variants() {
        let mut batch = functions.clone();
        let batch_stats = translate_corpus(&mut batch, &options);
        // The streaming engine consumes an iterator: the input corpus is
        // cloned lazily, one function at a time, never materialized for it.
        let (streamed, stream_stats) = translate_stream(functions.iter().cloned(), &options);
        assert_eq!(stream_stats.per_function, batch_stats.per_function, "{name}: stats differ");
        for (a, b) in batch.iter().zip(&streamed) {
            assert_eq!(a, b, "{name}: streamed function {} differs from batch", a.name);
        }
    }
}

#[test]
fn memory_footprint_shrinks_without_graph_and_liveness_sets() {
    // The Figure 7 claim, at integration level: the fast-liveness backend
    // needs far less memory than the interference-graph backend.
    let corpus = spec_like_corpus(0.1, false);
    let mut graph_bytes = 0usize;
    let mut livecheck_bytes = 0usize;
    for workload in &corpus {
        for func in workload.functions.iter().take(2) {
            let mut a = func.clone();
            let mut b = func.clone();
            let ga = translate_out_of_ssa(&mut a, &OutOfSsaOptions::us_i());
            let gb = translate_out_of_ssa(
                &mut b,
                &OutOfSsaOptions::us_i()
                    .with_interference(InterferenceMode::InterCheckLiveCheck)
                    .with_class_check(ClassCheck::Linear),
            );
            graph_bytes += ga.memory.total_bytes();
            livecheck_bytes += gb.memory.total_bytes();
        }
    }
    assert!(
        livecheck_bytes * 2 < graph_bytes,
        "expected a large footprint reduction: graph={graph_bytes}B livecheck={livecheck_bytes}B"
    );
}
