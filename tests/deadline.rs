//! Deadline vs. fuel distinguishability, and the regression contract of
//! both: a request that runs out of *time* (`DeadlineExceeded`, a property
//! of the request) and a function that runs out of *fuel*
//! (`ResourceExhausted`, a deterministic property of the function under its
//! `Limits`) must surface as different typed errors — and neither may
//! poison the pristine-snapshot retry path: the same worker must translate
//! the same input bit-identically once the budget pressure is lifted.

use std::sync::Mutex;
use std::time::Instant;

use out_of_ssa::cfggen::{generate_ssa_function, GenConfig};
use out_of_ssa::destruct::{
    translate_function_isolated, translate_function_isolated_policy, EnginePolicy, Limits,
    Resource, TranslateError, TranslateScratch, ValidationMode,
};
use out_of_ssa::ir::Function;
use out_of_ssa::liveness::{fuel, FunctionAnalyses};
use out_of_ssa::service::{ServiceConfig, ServiceError, TranslationService};

/// The failpoint configuration (used by the gated test below) is
/// process-wide; every test in this binary serialises on this.
static SERIAL: Mutex<()> = Mutex::new(());

fn input(seed: u64) -> Function {
    generate_ssa_function(format!("dl_{seed}"), &GenConfig::default(), seed).0
}

fn reference(seed: u64, validation: ValidationMode) -> Function {
    let mut func = input(seed);
    translate_function_isolated_policy(
        &mut func,
        &Default::default(),
        &Limits::default(),
        &EnginePolicy::validating(validation),
        &mut FunctionAnalyses::new(),
        &mut TranslateScratch::new(),
    )
    .expect("healthy input translates");
    func
}

#[test]
fn fuel_and_deadline_failures_are_distinguishable_and_leave_the_worker_clean() {
    let _guard = SERIAL.lock().unwrap_or_else(|poison| poison.into_inner());
    let options = Default::default();
    let mut analyses = FunctionAnalyses::new();
    let mut scratch = TranslateScratch::new();
    let pristine = input(3);

    // Fuel: a deterministic property of the function under its limits.
    let starved = Limits { max_fixpoint_iters: Some(1), ..Limits::UNBOUNDED };
    let mut victim = pristine.clone();
    let fuel_err =
        translate_function_isolated(&mut victim, &options, &starved, &mut analyses, &mut scratch)
            .unwrap_err();
    assert!(
        matches!(
            fuel_err,
            TranslateError::ResourceExhausted { resource: Resource::FixpointIterations, .. }
        ),
        "got {fuel_err:?}"
    );

    // Deadline: a property of the request — same function, same limits,
    // but an already-expired cancellation token.
    fuel::set_deadline(Some(Instant::now()));
    let mut victim = pristine.clone();
    let deadline_err = translate_function_isolated(
        &mut victim,
        &options,
        &Limits::UNBOUNDED,
        &mut analyses,
        &mut scratch,
    )
    .unwrap_err();
    fuel::set_deadline(None);
    assert!(
        matches!(deadline_err, TranslateError::DeadlineExceeded { .. }),
        "got {deadline_err:?}"
    );
    assert_ne!(fuel_err, deadline_err, "the two exhaustions must stay distinguishable");

    // Neither failure mode wedged the worker: with pressure lifted, the
    // same (quarantined, rebuilt) state translates the same input
    // bit-identically to a fresh worker.
    let mut healed = pristine.clone();
    translate_function_isolated(
        &mut healed,
        &options,
        &Limits::UNBOUNDED,
        &mut analyses,
        &mut scratch,
    )
    .expect("translates once pressure is lifted");
    let mut fresh = pristine.clone();
    translate_function_isolated(
        &mut fresh,
        &options,
        &Limits::UNBOUNDED,
        &mut FunctionAnalyses::new(),
        &mut TranslateScratch::new(),
    )
    .unwrap();
    assert_eq!(healed, fresh, "post-failure worker output diverged");
}

#[test]
fn fuel_exhaustion_through_the_service_is_typed_and_the_worker_is_recycled() {
    let _guard = SERIAL.lock().unwrap_or_else(|poison| poison.into_inner());
    let validation = ValidationMode::Structural;
    let expected = reference(3, validation);

    let service = TranslationService::start(ServiceConfig {
        workers: 1,
        validation,
        retries: 2,
        limits: Limits { max_fixpoint_iters: Some(1), ..Limits::UNBOUNDED },
        ..ServiceConfig::default()
    });
    // Every ladder rung enforces the same limits, so the whole ladder
    // fails with the *resource* error, not a deadline.
    let response = service.submit(input(3)).expect("admitted").wait();
    match &response.outcome {
        Err(ServiceError::Translate(TranslateError::ResourceExhausted {
            resource: Resource::FixpointIterations,
            ..
        })) => {}
        other => panic!("expected fixpoint exhaustion, got {other:?}"),
    }
    let returned = response.returned.expect("input handed back restored");
    assert_eq!(returned, input(3), "returned function must be the pristine input");
    let stats = service.shutdown();
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.deadline_exceeded, 0, "fuel exhaustion is not a deadline expiry");

    // A second service without the starved limits — same story, healthy.
    let service = TranslationService::start(ServiceConfig {
        workers: 1,
        validation,
        ..ServiceConfig::default()
    });
    let completed = service.submit(input(3)).expect("admitted").wait().outcome.unwrap();
    assert_eq!(completed.func, expected);
    service.shutdown();
}

/// The satellite regression: a deadline expiring *mid-translation* (forced
/// deterministically by a stall failpoint) fails typed through the whole
/// retry ladder, the worker is recycled rather than quarantined, and the
/// very same worker then translates the very same input bit-identically
/// once the pressure is gone — the pristine-clone retry path is intact.
#[cfg(feature = "failpoints")]
#[test]
fn deadline_expiry_leaves_the_pristine_retry_path_intact() {
    use std::time::Duration;

    use out_of_ssa::destruct::fault::failpoints;
    use out_of_ssa::destruct::TranslatePhase;

    let _guard = SERIAL.lock().unwrap_or_else(|poison| poison.into_inner());
    let validation = ValidationMode::Structural;
    let expected = reference(5, validation);

    let service = TranslationService::start(ServiceConfig {
        workers: 1,
        validation,
        retries: 2,
        ..ServiceConfig::default()
    });

    // Every coalesce entry stalls 200ms; the request has 40ms. The stall
    // is sliced and checks the cancellation token, so the deadline trips
    // mid-stall; the retry rungs start past the deadline and fail at their
    // first phase boundary — the final error is still the deadline.
    failpoints::configure_stall(failpoints::StallConfig {
        seed: 1,
        rate_per_mille: 1000,
        phase: Some(TranslatePhase::Coalesce),
        millis: 200,
    });
    let response = service
        .submit_with_deadline(input(5), Some(Duration::from_millis(40)))
        .expect("admitted")
        .wait();
    failpoints::clear_stall();
    match &response.outcome {
        Err(ServiceError::Translate(TranslateError::DeadlineExceeded { .. })) => {}
        other => panic!("expected deadline expiry, got {other:?}"),
    }
    assert!(response.returned.is_some(), "input handed back restored");

    // Same service, same (recycled, not quarantined) worker, same input,
    // no stall, no deadline: completes bit-identically to a fresh engine.
    let completed =
        service.submit(input(5)).expect("admitted").wait().outcome.expect("pressure lifted");
    assert_eq!(completed.rung, 0);
    assert_eq!(completed.func, expected, "post-deadline worker output diverged");

    let stats = service.shutdown();
    assert_eq!(stats.deadline_exceeded, 1);
    assert_eq!(stats.failed, 1);
    assert_eq!(stats.completed, 1);
}
