//! Queue-edge behaviour of the translation service: full queues under each
//! admission policy, deadlines expiring in the queue, shutdown with work in
//! flight, and bit-identity of service outputs with the direct engine.
//!
//! Every test here drives the service into an edge deliberately (usually by
//! pausing the workers so queue depth is scripted, not scheduled) and
//! asserts the two invariants of the overload model: every accepted request
//! resolves with exactly one typed outcome, and no function is ever lost or
//! duplicated — refusals and failures hand the input back.

use std::collections::BTreeSet;
use std::time::Duration;

use out_of_ssa::cfggen::{generate_ssa_function, GenConfig};
use out_of_ssa::destruct::{
    translate_function_isolated_policy, EnginePolicy, Limits, TranslateScratch, ValidationMode,
};
use out_of_ssa::ir::Function;
use out_of_ssa::liveness::FunctionAnalyses;
use out_of_ssa::service::{
    AdmissionPolicy, DegradationConfig, ServiceConfig, ServiceError, SubmitError,
    TranslationService,
};

fn input(seed: u64) -> Function {
    generate_ssa_function(format!("req_{seed}"), &GenConfig::default(), seed).0
}

/// The reference output: the same input through the non-pooled policy
/// engine on a fresh worker, rung-0 configuration.
fn reference(seed: u64, validation: ValidationMode) -> Function {
    let mut func = input(seed);
    let policy = EnginePolicy::validating(validation);
    translate_function_isolated_policy(
        &mut func,
        &Default::default(),
        &Limits::default(),
        &policy,
        &mut FunctionAnalyses::new(),
        &mut TranslateScratch::new(),
    )
    .expect("healthy input translates");
    func
}

#[test]
fn reject_admission_hands_the_function_back_at_capacity() {
    let service = TranslationService::start(ServiceConfig {
        workers: 1,
        queue_capacity: 3,
        admission: AdmissionPolicy::Reject,
        ..ServiceConfig::default()
    });
    service.pause();
    let mut tickets = Vec::new();
    let mut refused = Vec::new();
    for seed in 0..6u64 {
        match service.submit(input(seed)) {
            Ok(ticket) => tickets.push(ticket),
            Err(SubmitError::QueueFull(func)) => refused.push(func),
            Err(other) => panic!("unexpected refusal: {other}"),
        }
    }
    assert_eq!(tickets.len(), 3);
    assert_eq!(refused.len(), 3);
    // Nothing lost: the refused functions are the exact ones submitted.
    let names: Vec<_> = refused.iter().map(|f| f.name.clone()).collect();
    assert_eq!(names, ["req_3", "req_4", "req_5"]);
    service.resume();
    for ticket in tickets {
        assert!(ticket.wait().outcome.is_ok());
    }
    let stats = service.shutdown();
    assert_eq!(stats.rejected_queue_full, 3);
    assert_eq!(stats.accepted, 3);
    assert_eq!(stats.completed, 3);
}

#[test]
fn shed_oldest_admission_evicts_the_oldest_with_a_typed_reply() {
    let service = TranslationService::start(ServiceConfig {
        workers: 1,
        queue_capacity: 2,
        admission: AdmissionPolicy::ShedOldest,
        ..ServiceConfig::default()
    });
    service.pause();
    let tickets: Vec<_> =
        (0..4u64).map(|seed| service.submit(input(seed)).expect("always admitted")).collect();
    // Capacity 2, 4 submissions: requests 0 and 1 were evicted in order,
    // and their replies arrived while the workers were still paused —
    // shedding never waits on a worker.
    let mut tickets = tickets.into_iter();
    for seed in 0..2u64 {
        let response = tickets.next().unwrap().wait();
        assert!(matches!(response.outcome, Err(ServiceError::Shed)), "request {seed}");
        let returned = response.returned.as_ref().expect("shed request hands the input back");
        assert_eq!(returned.name, format!("req_{seed}"));
    }
    service.resume();
    let responses: Vec<_> = tickets.map(|t| t.wait()).collect();
    for response in &responses {
        assert!(response.outcome.is_ok());
    }
    let stats = service.shutdown();
    assert_eq!(stats.accepted, 4);
    assert_eq!(stats.shed, 2);
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.resolved(), 4);
}

#[test]
fn block_admission_times_out_typed_when_no_space_opens() {
    let service = TranslationService::start(ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        admission: AdmissionPolicy::Block,
        max_admission_wait: Some(Duration::from_millis(30)),
        ..ServiceConfig::default()
    });
    service.pause();
    let ticket = service.submit(input(0)).expect("first fits");
    match service.submit(input(1)) {
        Err(SubmitError::AdmissionTimeout(func)) => assert_eq!(func.name, "req_1"),
        other => panic!("expected admission timeout, got {:?}", other.map(|t| t.id())),
    }
    service.resume();
    assert!(ticket.wait().outcome.is_ok());
    let stats = service.shutdown();
    assert_eq!(stats.admission_timeouts, 1);
    assert_eq!(stats.completed, 1);
}

#[test]
fn deadline_expiring_in_the_queue_is_typed_and_skips_translation() {
    let service = TranslationService::start(ServiceConfig {
        workers: 1,
        queue_capacity: 8,
        ..ServiceConfig::default()
    });
    service.pause();
    let doomed =
        service.submit_with_deadline(input(0), Some(Duration::from_millis(10))).expect("admitted");
    let healthy = service.submit(input(1)).expect("admitted");
    std::thread::sleep(Duration::from_millis(30));
    service.resume();

    let response = doomed.wait();
    assert!(matches!(response.outcome, Err(ServiceError::ExpiredInQueue)));
    let returned = response.returned.expect("expired request hands the input back");
    assert_eq!(returned.name, "req_0");
    assert!(healthy.wait().outcome.is_ok(), "no deadline, unaffected");

    let stats = service.shutdown();
    assert_eq!(stats.expired_in_queue, 1);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.resolved(), 2);
}

#[test]
fn shutdown_drains_in_flight_requests_with_typed_outcomes() {
    let service = TranslationService::start(ServiceConfig {
        workers: 2,
        queue_capacity: 16,
        validation: ValidationMode::Structural,
        ..ServiceConfig::default()
    });
    service.pause();
    let tickets: Vec<_> =
        (0..10u64).map(|seed| service.submit(input(seed)).expect("admitted")).collect();
    // Shutdown with everything still queued: close unpauses, the workers
    // drain the backlog, and only then do they exit.
    let stats = service.shutdown();
    assert_eq!(stats.accepted, 10);
    assert_eq!(stats.completed, 10);
    assert_eq!(stats.resolved(), 10);

    // Every ticket resolved exactly once, no duplicates, nothing dropped.
    let mut ids = BTreeSet::new();
    for ticket in tickets {
        let response = ticket.wait();
        assert!(response.outcome.is_ok());
        assert!(ids.insert(response.id), "duplicate reply for request {}", response.id);
    }
    assert_eq!(ids.len(), 10);
}

#[test]
fn service_outputs_are_bit_identical_to_the_direct_engine() {
    let validation = ValidationMode::Structural;
    let expected: Vec<_> = (0..12u64).map(|seed| reference(seed, validation)).collect();

    let service = TranslationService::start(ServiceConfig {
        workers: 3,
        queue_capacity: 32,
        validation,
        ..ServiceConfig::default()
    });
    let tickets: Vec<_> =
        (0..12u64).map(|seed| service.submit(input(seed)).expect("admitted")).collect();
    for (ticket, expected) in tickets.into_iter().zip(&expected) {
        let completed = ticket.wait().outcome.expect("healthy input translates");
        assert_eq!(completed.rung, 0, "no overload: every request served at full fidelity");
        assert_eq!(
            &completed.func, expected,
            "service output diverged from the direct engine for {}",
            expected.name
        );
    }
    service.shutdown();
}

#[test]
fn degradation_ladder_is_deterministic_under_scripted_depth() {
    let service = TranslationService::start(ServiceConfig {
        workers: 1,
        queue_capacity: 32,
        degradation: DegradationConfig { degrade_depth: 4, severe_depth: 8, recover_depth: 1 },
        ..ServiceConfig::default()
    });
    service.pause();
    // Depth walks 1..=9 across nine submissions: the level steps 0→1 when
    // the depth first reaches 4 and 1→2 when it first reaches 8 — exactly
    // two upward transitions, independent of timing, because the workers
    // are parked and every evaluation sees the scripted depth.
    let tickets: Vec<_> =
        (0..9u64).map(|seed| service.submit(input(seed)).expect("admitted")).collect();
    let live = service.stats();
    assert_eq!(live.level, 2);
    assert_eq!(live.degraded_transitions, 2);
    assert_eq!(live.recovered_transitions, 0);

    service.resume();
    let responses: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
    for response in &responses {
        assert!(response.outcome.is_ok());
    }
    // The drain empties the queue: the level recovered all the way to 0
    // (one step per dequeue at depth ≤ recover_depth).
    let stats = service.shutdown();
    assert_eq!(stats.level, 0);
    assert_eq!(stats.recovered_transitions, 2);
    // Early requests (dequeued while the backlog was still deep) started
    // degraded; the final request, dequeued at depth 0, ran at level 0.
    assert!(responses.iter().any(|r| r.outcome.as_ref().unwrap().level > 0));
    assert_eq!(responses.last().unwrap().outcome.as_ref().unwrap().level, 0);
    assert_eq!(stats.per_level.iter().sum::<u64>(), 9);
    assert!(stats.per_level[1] + stats.per_level[2] > 0);
}
