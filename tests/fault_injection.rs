//! Fault isolation at integration level: the isolated engine entry points
//! must contain per-function failures — malformed inputs, exceeded resource
//! limits, injected panics — while translating every healthy neighbour
//! bit-identically to a fault-free run.
//!
//! The injection campaigns themselves live in the `failpoints` module at the
//! bottom, compiled only under `--features failpoints` (the fault-injection
//! CI job); the limit/verifier tests here run in every configuration.

use out_of_ssa::cfggen::{generate_function, generate_ssa_function, GenConfig};
use out_of_ssa::destruct::{
    translate_corpus, translate_corpus_isolated, translate_function_isolated, Limits, Resource,
    TranslateError, TranslatePhase,
};
use out_of_ssa::destruct::{OutOfSsaOptions, TranslateScratch};
use out_of_ssa::ir::Function;
use out_of_ssa::liveness::FunctionAnalyses;
use out_of_ssa::Pipeline;

/// A small corpus of distinct healthy SSA functions.
fn corpus(n: usize) -> Vec<Function> {
    (0..n as u64)
        .map(|seed| generate_ssa_function(format!("fi{seed}"), &GenConfig::small(), seed).0)
        .collect()
}

#[test]
fn isolated_engine_matches_the_plain_engine_on_a_healthy_corpus() {
    let options = OutOfSsaOptions::default();
    let mut plain = corpus(12);
    let plain_stats = translate_corpus(&mut plain, &options);

    let mut isolated = corpus(12);
    let stats = translate_corpus_isolated(&mut isolated, &options, &Limits::UNBOUNDED);
    assert_eq!(stats.num_errors(), 0);
    assert_eq!(isolated, plain);
    for (result, expected) in stats.results.iter().zip(&plain_stats.per_function) {
        assert_eq!(result.as_ref().unwrap(), expected);
    }
}

#[test]
fn size_limits_reject_only_the_oversized_functions() {
    let options = OutOfSsaOptions::default();
    let mut plain = corpus(8);
    translate_corpus(&mut plain, &options);

    // Pick a bound between the smallest and largest function so the corpus
    // splits into both accepted and rejected functions.
    let sizes: Vec<u64> = corpus(8).iter().map(|f| f.num_insts() as u64).collect();
    let limit = (sizes.iter().min().unwrap() + sizes.iter().max().unwrap()) / 2;
    assert!(sizes.iter().any(|&s| s > limit) && sizes.iter().any(|&s| s <= limit));

    let mut bounded = corpus(8);
    let limits = Limits { max_insts: Some(limit), ..Limits::UNBOUNDED };
    let stats = translate_corpus_isolated(&mut bounded, &options, &limits);
    for (i, (result, &size)) in stats.results.iter().zip(&sizes).enumerate() {
        if size > limit {
            // Rejected up front: the function is left untouched (still has
            // its φs) and the error carries the observed size.
            assert_eq!(
                result.as_ref().unwrap_err(),
                &TranslateError::ResourceExhausted {
                    resource: Resource::Instructions,
                    limit,
                    observed: size,
                }
            );
        } else {
            // Accepted: bit-identical to the fault-free run.
            assert!(result.is_ok());
            assert_eq!(bounded[i], plain[i], "healthy function {i} diverged");
        }
    }
}

#[test]
fn fixpoint_fuel_returns_resource_exhausted_and_recovers() {
    let options = OutOfSsaOptions::default();
    let mut analyses = FunctionAnalyses::new();
    let mut scratch = TranslateScratch::new();

    // A generated function with loops needs more than one liveness fixpoint
    // pass, so a one-pass budget trips mid-translation.
    let (func, _) = generate_ssa_function("fuel", &GenConfig::small(), 3);
    let starved = Limits { max_fixpoint_iters: Some(1), ..Limits::UNBOUNDED };
    let mut victim = func.clone();
    let err =
        translate_function_isolated(&mut victim, &options, &starved, &mut analyses, &mut scratch)
            .unwrap_err();
    assert_eq!(
        err,
        TranslateError::ResourceExhausted {
            resource: Resource::FixpointIterations,
            limit: 1,
            observed: 1,
        }
    );

    // The same (quarantined, rebuilt) analyses and scratch then translate
    // the same function correctly once the budget is lifted: identical to a
    // run through completely fresh state.
    let mut retry = func.clone();
    let stats = translate_function_isolated(
        &mut retry,
        &options,
        &Limits::UNBOUNDED,
        &mut analyses,
        &mut scratch,
    )
    .unwrap();
    let mut fresh = func.clone();
    let fresh_stats = translate_function_isolated(
        &mut fresh,
        &options,
        &Limits::UNBOUNDED,
        &mut FunctionAnalyses::new(),
        &mut TranslateScratch::new(),
    )
    .unwrap();
    assert_eq!(retry, fresh);
    assert_eq!(stats, fresh_stats);
}

#[test]
fn malformed_input_is_reported_as_a_verify_error() {
    // A *pre-SSA* function (mutable virtual registers, multiple definitions
    // per value) is structurally fine but violates the SSA invariants the
    // translation engine's contract requires.
    let mut pre_ssa = generate_function("malformed", &GenConfig::small(), 1);
    let err = translate_function_isolated(
        &mut pre_ssa,
        &OutOfSsaOptions::default(),
        &Limits::UNBOUNDED,
        &mut FunctionAnalyses::new(),
        &mut TranslateScratch::new(),
    )
    .unwrap_err();
    let TranslateError::Malformed { phase, detail } = err else {
        panic!("expected Malformed, got {err:?}");
    };
    assert_eq!(phase, TranslatePhase::Verify);
    assert!(!detail.is_empty());
}

#[test]
fn a_poisoned_function_never_affects_its_corpus_neighbours() {
    let options = OutOfSsaOptions::default();
    let mut plain = corpus(6);
    translate_corpus(&mut plain, &options);

    // Swap one healthy function for a malformed (pre-SSA) one and run both
    // the serial and a two-worker isolated translation.
    for threads in [1, 2] {
        let mut poisoned = corpus(6);
        poisoned[2] = generate_function("fi2", &GenConfig::small(), 2);
        let stats = out_of_ssa::destruct::translate_corpus_isolated_with(
            &mut poisoned,
            &options,
            &Limits::UNBOUNDED,
            threads,
        );
        assert_eq!(stats.num_errors(), 1);
        let (index, error) = stats.errors().next().unwrap();
        assert_eq!(index, 2);
        assert_eq!(error.phase(), Some(TranslatePhase::Verify));
        for (i, func) in poisoned.iter().enumerate() {
            if i != 2 {
                assert_eq!(func, &plain[i], "threads={threads}: neighbour {i} diverged");
            }
        }
    }
}

#[test]
fn pooled_streaming_discards_the_poisoned_slot_and_keeps_neighbours_identical() {
    use out_of_ssa::cfggen::{generate_function_into, generate_ssa_function_into};
    use out_of_ssa::destruct::{translate_stream_pooled_isolated_serial, EngineWorker};
    use out_of_ssa::ir::FunctionPool;

    let options = OutOfSsaOptions::default();
    let mut plain = corpus(6);
    translate_corpus(&mut plain, &options);

    // A pooled source that hands out function 2 as a malformed (pre-SSA)
    // function, built into recycled pool slots like every healthy neighbour.
    let mut worker = EngineWorker::new();
    let mut next = 0u64;
    let mut source = |pool: &mut FunctionPool| -> Option<Function> {
        if next == 6 {
            return None;
        }
        let seed = next;
        next += 1;
        let slot = pool.checkout();
        if seed == 2 {
            Some(generate_function_into(slot, format!("fi{seed}"), &GenConfig::small(), seed))
        } else {
            Some(generate_ssa_function_into(slot, format!("fi{seed}"), &GenConfig::small(), seed).0)
        }
    };

    let mut failures = Vec::new();
    let stats = translate_stream_pooled_isolated_serial(
        &mut source,
        &mut worker,
        &options,
        &Limits::UNBOUNDED,
        |index, result| match result {
            Ok(func) => {
                assert_eq!(func, &plain[index], "survivor {index} diverged from fault-free run");
            }
            Err(error) => failures.push((index, error.phase())),
        },
    );
    assert_eq!(stats.num_errors(), 1);
    assert_eq!(failures, vec![(2, Some(TranslatePhase::Verify))]);

    // The quarantined slot is discarded, never recycled: its replacement is
    // freshly allocated, so of six checkouts only four can come from the
    // free list (the first of the run and the first after the discard miss).
    let pool_stats = worker.pool.stats();
    assert_eq!(pool_stats.checkouts, 6);
    assert_eq!(pool_stats.retired, 5, "five healthy functions retired");
    assert_eq!(pool_stats.discarded, 1, "the poisoned slot was discarded");
    assert_eq!(pool_stats.recycled, 4, "discarded storage never re-enters the free list");
    assert_eq!(worker.pool.free_len(), 1);
}

#[test]
fn pipeline_try_run_matches_run_and_contains_failures() {
    // Healthy input: try_run is bit-identical to run.
    let func = generate_function("plumb", &GenConfig::small(), 5);
    let mut via_run = func.clone();
    let report = Pipeline::new(OutOfSsaOptions::default()).run(&mut via_run);
    let mut via_try = func.clone();
    let mut pipeline = Pipeline::new(OutOfSsaOptions::default());
    let try_report = pipeline.try_run(&mut via_try).unwrap();
    assert_eq!(via_try, via_run);
    assert_eq!(try_report.translation, report.translation);

    // Structurally broken input (a block without a terminator) is rejected
    // at Verify, and the same pipeline object keeps translating healthy
    // functions identically afterwards (its caches were quarantined).
    let mut builder = out_of_ssa::ir::builder::FunctionBuilder::new("broken", 0);
    let entry = builder.create_block();
    builder.set_entry(entry);
    builder.switch_to_block(entry);
    let v = builder.declare_value();
    builder.iconst_to(v, 1);
    let mut broken = builder.finish();
    let err = pipeline.try_run(&mut broken).unwrap_err();
    assert_eq!(err.phase(), Some(TranslatePhase::Verify));

    let mut after = func.clone();
    pipeline.try_run(&mut after).unwrap();
    assert_eq!(after, via_run);

    // An oversized input trips the configured limit.
    let limit = func.num_insts() as u64 - 1;
    let mut pipeline = Pipeline::new(OutOfSsaOptions::default())
        .with_limits(Limits { max_insts: Some(limit), ..Limits::UNBOUNDED });
    let mut big = func.clone();
    let err = pipeline.try_run(&mut big).unwrap_err();
    assert_eq!(
        err,
        TranslateError::ResourceExhausted {
            resource: Resource::Instructions,
            limit,
            observed: limit + 1,
        }
    );
}

/// Deterministic injection campaigns — the `failpoints` feature only.
#[cfg(feature = "failpoints")]
mod failpoints {
    use super::*;
    use out_of_ssa::destruct::fault::failpoints::{
        clear, configure, should_fail, silence_injected_panics, FailpointConfig,
    };
    use out_of_ssa::destruct::{translate_corpus_isolated_with, translate_stream_isolated_with};
    use std::sync::Mutex;

    /// The injector configuration is process-global: campaigns must not
    /// overlap, so every test in this module serialises on this lock.
    static CAMPAIGN: Mutex<()> = Mutex::new(());

    const SEED: u64 = 0xB0155;
    const RATE: u32 = 350;

    fn armed() -> FailpointConfig {
        FailpointConfig { seed: SEED, rate_per_mille: RATE, phase: Some(TranslatePhase::Coalesce) }
    }

    #[test]
    fn injected_faults_poison_exactly_the_predicted_subset() {
        let _guard = CAMPAIGN.lock().unwrap_or_else(|e| e.into_inner());
        silence_injected_panics();
        let options = OutOfSsaOptions::default();

        // Fault-free reference run.
        clear();
        let mut reference = corpus(16);
        let reference_stats =
            translate_corpus_isolated_with(&mut reference, &options, &Limits::UNBOUNDED, 1);
        assert_eq!(reference_stats.num_errors(), 0);

        // The poisoned subset is a pure function of (seed, name, phase):
        // precompute it, then demand the engine reports exactly that subset.
        configure(armed());
        let predicted: Vec<bool> =
            corpus(16).iter().map(|f| should_fail(&f.name, TranslatePhase::Coalesce)).collect();
        let k = predicted.iter().filter(|&&p| p).count();
        assert!((1..16).contains(&k), "campaign must poison a strict subset, hit {k}/16");

        for threads in [1, 3] {
            let mut victims = corpus(16);
            let stats =
                translate_corpus_isolated_with(&mut victims, &options, &Limits::UNBOUNDED, threads);
            assert_eq!(stats.num_errors(), k, "threads={threads}");
            for (i, (result, &poisoned)) in stats.results.iter().zip(&predicted).enumerate() {
                if poisoned {
                    let err = result.as_ref().unwrap_err();
                    assert_eq!(err.phase(), Some(TranslatePhase::Coalesce), "function {i}");
                    assert!(matches!(err, TranslateError::Panicked { .. }), "function {i}");
                } else {
                    // Healthy neighbours are bit-identical to the fault-free
                    // run — worker state poisoned by an unwind never leaks.
                    assert_eq!(
                        result.as_ref().unwrap(),
                        reference_stats.results[i].as_ref().unwrap()
                    );
                    assert_eq!(
                        victims[i], reference[i],
                        "threads={threads}: function {i} diverged"
                    );
                }
            }
        }
        clear();
    }

    #[test]
    fn batch_and_streaming_report_identical_faults() {
        let _guard = CAMPAIGN.lock().unwrap_or_else(|e| e.into_inner());
        silence_injected_panics();
        let options = OutOfSsaOptions::default();

        configure(armed());
        let mut batch = corpus(16);
        let batch_stats =
            translate_corpus_isolated_with(&mut batch, &options, &Limits::UNBOUNDED, 2);
        let (streamed, stream_stats) =
            translate_stream_isolated_with(corpus(16), &options, &Limits::UNBOUNDED, 2);
        clear();

        assert_eq!(stream_stats.results, batch_stats.results);
        assert_eq!(streamed.len(), batch.len());
        for (i, (result, batch_func)) in streamed.iter().zip(&batch).enumerate() {
            match result {
                Ok(func) => assert_eq!(func, batch_func, "function {i} differs from batch"),
                Err(err) => assert_eq!(Some(err), batch_stats.results[i].as_ref().err()),
            }
        }
    }

    #[test]
    fn pooled_streaming_matches_batch_verdicts_and_discards_every_poisoned_slot() {
        use out_of_ssa::cfggen::generate_ssa_function_into;
        use out_of_ssa::destruct::{translate_stream_pooled_isolated_serial, EngineWorker};
        use out_of_ssa::ir::{Function, FunctionPool};

        let _guard = CAMPAIGN.lock().unwrap_or_else(|e| e.into_inner());
        silence_injected_panics();
        let options = OutOfSsaOptions::default();

        configure(armed());
        let mut batch = corpus(16);
        let batch_stats =
            translate_corpus_isolated_with(&mut batch, &options, &Limits::UNBOUNDED, 1);
        let k = batch_stats.num_errors();
        assert!((1..16).contains(&k), "campaign must poison a strict subset, hit {k}/16");

        // The same campaign through the pooled streaming engine: identical
        // verdicts, surviving functions bit-identical to batch, and exactly
        // one discarded pool slot per injected fault.
        let mut worker = EngineWorker::new();
        let mut next = 0u64;
        let mut source = |pool: &mut FunctionPool| -> Option<Function> {
            if next == 16 {
                return None;
            }
            let seed = next;
            next += 1;
            let slot = pool.checkout();
            Some(generate_ssa_function_into(slot, format!("fi{seed}"), &GenConfig::small(), seed).0)
        };
        let stats = translate_stream_pooled_isolated_serial(
            &mut source,
            &mut worker,
            &options,
            &Limits::UNBOUNDED,
            |index, result| match result {
                Ok(func) => {
                    assert!(batch_stats.results[index].is_ok(), "verdict {index} differs");
                    assert_eq!(func, &batch[index], "survivor {index} differs from batch");
                }
                Err(error) => {
                    assert_eq!(Some(error), batch_stats.results[index].as_ref().err());
                }
            },
        );
        clear();

        assert_eq!(stats.results, batch_stats.results);
        let pool_stats = worker.pool.stats();
        assert_eq!(pool_stats.checkouts, 16);
        assert_eq!(pool_stats.discarded as usize, k, "one discarded slot per fault");
        assert_eq!(pool_stats.retired as usize, 16 - k);
    }

    #[test]
    fn injection_is_deterministic_across_runs() {
        let _guard = CAMPAIGN.lock().unwrap_or_else(|e| e.into_inner());
        silence_injected_panics();
        let options = OutOfSsaOptions::default();

        configure(armed());
        let run = |threads| {
            let mut funcs = corpus(12);
            let stats =
                translate_corpus_isolated_with(&mut funcs, &options, &Limits::UNBOUNDED, threads);
            (funcs, stats.results)
        };
        let (funcs_a, results_a) = run(3);
        let (funcs_b, results_b) = run(3);
        let (funcs_c, results_c) = run(1);
        clear();

        // Same campaign, same corpus: identical verdicts and identical
        // surviving functions, independent of worker count and schedule.
        assert_eq!(results_a, results_b);
        assert_eq!(results_a, results_c);
        assert_eq!(funcs_a, funcs_b);
        assert_eq!(funcs_a, funcs_c);
    }
}
