//! Invalidation soundness of the shared analysis cache.
//!
//! The pipeline's correctness rests on two claims about
//! [`FunctionAnalyses`]: after any mutation followed by the *declared*
//! invalidation (instruction-only vs CFG-level), every cached analysis is
//! indistinguishable from a fresh computation — including when the cache
//! *recycles* the storage of the invalidated analyses — and through a full
//! pipeline no analysis is ever computed twice for the same version. The
//! first claim is exercised here with randomized mutation sequences, the
//! second with the compute counters.

use out_of_ssa::cfggen::rng::SmallRng;
use out_of_ssa::cfggen::{generate_ssa_function, pin_call_conventions, GenConfig};
use out_of_ssa::destruct::OutOfSsaOptions;
use out_of_ssa::ir::{
    Block, ControlFlowGraph, DominanceFrontiers, DominatorTree, Function, InstData, Value,
};
use out_of_ssa::liveness::{FastLiveness, LiveRangeInfo, LivenessSets};
use out_of_ssa::ssa::split_edge;
use out_of_ssa::{cfggen::generate_function, liveness::FunctionAnalyses, Pipeline};

/// Counting allocator for the steady-state allocation assertions below: the
/// warm generate→SSA→translate cycle through recycled pool storage must not
/// touch the heap. Registered per test binary; only this file's tests see it.
#[global_allocator]
static ALLOC: ossa_bench::alloc::CountingAllocator = ossa_bench::alloc::CountingAllocator;

/// Compares every cached analysis against a fresh, cache-free computation.
fn assert_cache_matches_fresh(func: &Function, analyses: &FunctionAnalyses, context: &str) {
    let fresh_cfg = ControlFlowGraph::compute(func);
    let fresh_dom = DominatorTree::compute(func, &fresh_cfg);
    let fresh_front = DominanceFrontiers::compute(func, &fresh_cfg, &fresh_dom);
    let fresh_sets = LivenessSets::compute(func, &fresh_cfg);
    let fresh_info = LiveRangeInfo::compute(func);
    let fresh_fast = FastLiveness::compute(func, &fresh_cfg, &fresh_dom);

    let cfg = analyses.cfg(func);
    let domtree = analyses.domtree(func);
    let frontiers = analyses.frontiers(func);
    let sets = analyses.liveness_sets(func);
    let info = analyses.live_range_info(func);
    let fast = analyses.fast_liveness(func);

    assert_eq!(cfg.reverse_post_order(), fresh_cfg.reverse_post_order(), "{context}: rpo");
    assert_eq!(
        fast.footprint_bytes(),
        fresh_fast.footprint_bytes(),
        "{context}: recycled fast-liveness footprint diverged from fresh"
    );
    for block in func.blocks() {
        assert_eq!(cfg.succs(block), fresh_cfg.succs(block), "{context}: succs({block})");
        assert_eq!(cfg.preds(block), fresh_cfg.preds(block), "{context}: preds({block})");
        assert_eq!(
            cfg.is_reachable(block),
            fresh_cfg.is_reachable(block),
            "{context}: reachable({block})"
        );
        assert_eq!(domtree.idom(block), fresh_dom.idom(block), "{context}: idom({block})");
        assert_eq!(
            frontiers.frontier(block),
            fresh_front.frontier(block),
            "{context}: frontier({block})"
        );
        for value in func.values() {
            assert_eq!(
                sets.live_in(block).contains(value),
                fresh_sets.live_in(block).contains(value),
                "{context}: live-in({block}, {value})"
            );
            assert_eq!(
                sets.live_out(block).contains(value),
                fresh_sets.live_out(block).contains(value),
                "{context}: live-out({block}, {value})"
            );
            if cfg.is_reachable(block) {
                assert_eq!(
                    fast.is_live_in_query(domtree, info, block, value),
                    fresh_fast.is_live_in_query(&fresh_dom, &fresh_info, block, value),
                    "{context}: fast live-in({block}, {value})"
                );
            }
        }
    }
    for value in func.values() {
        assert_eq!(info.def(value), fresh_info.def(value), "{context}: def({value})");
        assert_eq!(
            info.uses().uses_of(value),
            fresh_info.uses().uses_of(value),
            "{context}: uses({value})"
        );
    }
    assert_eq!(domtree.preorder(), fresh_dom.preorder(), "{context}: dom preorder");
}

/// Randomized mutation sequences: interleave instruction-only mutations
/// (copy insertion) and CFG mutations (edge splitting) with their declared
/// invalidation, and check after every step that the cache — including its
/// recycled storage — answers exactly like a fresh computation.
#[test]
fn cached_analyses_survive_randomized_mutation_sequences() {
    let mut rng = SmallRng::seed_from_u64(0xca5e);
    // One cache reused across every function of the test: the strongest
    // recycling workout (each new function starts with storage from the
    // previous one).
    let mut analyses = FunctionAnalyses::new();
    for seed in 0..10u64 {
        let (mut func, _) = generate_ssa_function(format!("mut{seed}"), &GenConfig::small(), seed);
        analyses.invalidate_cfg();
        assert_cache_matches_fresh(&func, &analyses, &format!("seed {seed}, fresh"));

        for step in 0..6 {
            let context = format!("seed {seed}, step {step}");
            if rng.below(3) == 0 {
                // CFG mutation: split a random edge.
                let edges: Vec<(Block, Block)> = {
                    let cfg = analyses.cfg(&func);
                    cfg.edges().collect()
                };
                if edges.is_empty() {
                    continue;
                }
                let (pred, succ) = edges[rng.below(edges.len())];
                split_edge(&mut func, pred, succ);
                analyses.invalidate_cfg();
            } else {
                // Instruction-only mutation: insert a copy of a value whose
                // definition dominates the insertion point (the top of the
                // defining block's body is always safe).
                let info = LiveRangeInfo::compute(&func);
                let candidates: Vec<(Block, usize, Value)> = func
                    .values()
                    .filter_map(|v| {
                        let def = info.def(v)?;
                        Some((def.block, def.pos + 1, v))
                    })
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let (block, pos, src) = candidates[rng.below(candidates.len())];
                if pos > func.block_len(block).saturating_sub(1) {
                    continue; // never insert after the terminator
                }
                let dst = func.new_value();
                func.insert_inst(block, pos, InstData::Copy { dst, src });
                analyses.invalidate_instructions();
            }
            assert_cache_matches_fresh(&func, &analyses, &context);
        }
    }
}

/// The end-to-end compute-count proof at the public-API level: running the
/// full pipeline (SSA construction → copy propagation → DCE → CSSA check →
/// translation → register allocation) over one shared cache never computes
/// an analysis twice for the same (function, CFG version) — and never twice
/// per instruction version for the instruction-dependent ones.
#[test]
fn full_pipeline_computes_each_analysis_at_most_once_per_version() {
    for options in [OutOfSsaOptions::default(), OutOfSsaOptions::sreedhar_iii()] {
        let mut pipeline = Pipeline::new(options).with_registers(8);
        for seed in 0..10u64 {
            let mut func = generate_function(format!("once{seed}"), &GenConfig::small(), seed);
            let before = pipeline.counts();
            pipeline.run_with(&mut func, |f| {
                pin_call_conventions(f);
            });
            let after = pipeline.counts();
            let cfg_versions = after.ir.cfg_versions - before.ir.cfg_versions + 1;
            let inst_versions = after.inst_versions - before.inst_versions + 1;
            for (name, delta, budget) in [
                ("cfg", after.ir.cfg - before.ir.cfg, cfg_versions),
                ("domtree", after.ir.domtree - before.ir.domtree, cfg_versions),
                ("frontiers", after.ir.frontiers - before.ir.frontiers, cfg_versions),
                ("loops", after.ir.loops - before.ir.loops, cfg_versions),
                ("frequencies", after.ir.frequencies - before.ir.frequencies, cfg_versions),
                ("fast_liveness", after.fast_liveness - before.fast_liveness, cfg_versions),
                ("liveness_sets", after.liveness_sets - before.liveness_sets, inst_versions),
                ("live_range_info", after.live_range_info - before.live_range_info, inst_versions),
            ] {
                assert!(
                    delta <= budget,
                    "seed {seed}: {name} computed {delta} times for {budget} versions"
                );
            }
        }
    }
}

/// Recycled-vs-fresh parity of the instruction-dependent analyses: one
/// cache's `LivenessSets` and `LiveRangeInfo` storage cycles through the
/// spare slots on every `invalidate_instructions`, across functions of
/// different sizes, under a randomized mutation sequence — and after every
/// step both answer exactly like cache-free computations. This is the
/// property the allocation-free steady state rests on: recycling must be
/// observationally invisible.
#[test]
fn recycled_liveness_sets_and_info_match_fresh_under_random_mutation() {
    let mut rng = SmallRng::seed_from_u64(0x11fe);
    let mut analyses = FunctionAnalyses::new();
    for seed in 0..8u64 {
        let (mut func, _) = generate_ssa_function(format!("rec{seed}"), &GenConfig::small(), seed);
        analyses.invalidate_cfg();
        for step in 0..8 {
            // Force both instruction-dependent analyses so the subsequent
            // invalidation parks real storage in the spare slots, then
            // mutate and recompute through the recycled path.
            let _ = analyses.liveness_sets(&func);
            let _ = analyses.live_range_info(&func);

            let info = LiveRangeInfo::compute(&func);
            let candidates: Vec<(Block, usize, Value)> = func
                .values()
                .filter_map(|v| {
                    let def = info.def(v)?;
                    Some((def.block, def.pos + 1, v))
                })
                .collect();
            if candidates.is_empty() {
                break;
            }
            let (block, pos, src) = candidates[rng.below(candidates.len())];
            if pos > func.block_len(block).saturating_sub(1) {
                continue;
            }
            let dst = func.new_value();
            func.insert_inst(block, pos, InstData::Copy { dst, src });
            analyses.invalidate_instructions();

            let fresh_sets = LivenessSets::of(&func);
            let fresh_info = LiveRangeInfo::compute(&func);
            let sets = analyses.liveness_sets(&func);
            let cached_info = analyses.live_range_info(&func);
            for b in func.blocks() {
                assert_eq!(
                    sets.ordered_live_in(b),
                    fresh_sets.ordered_live_in(b),
                    "seed {seed} step {step}: recycled live-in({b}) diverged"
                );
                assert_eq!(
                    sets.ordered_live_out(b),
                    fresh_sets.ordered_live_out(b),
                    "seed {seed} step {step}: recycled live-out({b}) diverged"
                );
            }
            assert_eq!(sets.total_entries(), fresh_sets.total_entries());
            for v in func.values() {
                assert_eq!(cached_info.def(v), fresh_info.def(v), "def({v})");
                assert_eq!(
                    cached_info.uses().uses_of(v),
                    fresh_info.uses().uses_of(v),
                    "seed {seed} step {step}: recycled uses({v}) diverged"
                );
            }
        }
    }
}

/// Incremental-vs-full liveness parity: after instruction insertions
/// declared per block ([`FunctionAnalyses::invalidate_instructions_in_blocks`])
/// — interleaved with edge splits declared as CFG invalidations — the
/// incrementally repaired sets must be indistinguishable from a cache-free
/// whole-function recomputation at every step.
#[test]
fn incremental_liveness_repair_matches_full_recompute_under_random_mutation() {
    let mut rng = SmallRng::seed_from_u64(0x1bc5);
    let mut analyses = FunctionAnalyses::new();
    for seed in 0..10u64 {
        let (mut func, _) = generate_ssa_function(format!("inc{seed}"), &GenConfig::small(), seed);
        analyses.invalidate_cfg();
        for step in 0..8 {
            // Force the sets so the repair path (not a fresh compute) runs.
            let _ = analyses.liveness_sets(&func);
            if rng.below(4) == 0 {
                // CFG mutation: split a random edge, full invalidation.
                let edges: Vec<(Block, Block)> = analyses.cfg(&func).edges().collect();
                if edges.is_empty() {
                    continue;
                }
                let (pred, succ) = edges[rng.below(edges.len())];
                split_edge(&mut func, pred, succ);
                analyses.invalidate_cfg();
            } else {
                // Instruction insertion confined to one block, declared
                // per block: a copy of a value right after its definition.
                let info = LiveRangeInfo::compute(&func);
                let candidates: Vec<(Block, usize, Value)> = func
                    .values()
                    .filter_map(|v| {
                        let def = info.def(v)?;
                        Some((def.block, def.pos + 1, v))
                    })
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let (block, pos, src) = candidates[rng.below(candidates.len())];
                if pos > func.block_len(block).saturating_sub(1) {
                    continue;
                }
                let dst = func.new_value();
                func.insert_inst(block, pos, InstData::Copy { dst, src });
                analyses.invalidate_instructions_in_blocks(&func, &[block]);
            }
            let fresh = LivenessSets::of(&func);
            let repaired = analyses.liveness_sets(&func);
            for b in func.blocks() {
                assert_eq!(
                    repaired.ordered_live_in(b),
                    fresh.ordered_live_in(b),
                    "seed {seed} step {step}: repaired live-in({b}) diverged"
                );
                assert_eq!(
                    repaired.ordered_live_out(b),
                    fresh.ordered_live_out(b),
                    "seed {seed} step {step}: repaired live-out({b}) diverged"
                );
            }
            assert_eq!(repaired.total_entries(), fresh.total_entries());
        }
    }
}

/// The counter proof of the per-block claim: a copy inserted into a block
/// with a small predecessor closure repairs only that closure — the
/// liveness sets are *not* recomputed whole-function (the full-compute
/// counter stays put) and the repair region is far below the block count.
#[test]
fn single_block_insertion_repairs_liveness_per_block_not_whole_function() {
    use out_of_ssa::ir::builder::FunctionBuilder;
    // entry -> b1 -> b2 -> ... -> b19 -> return; the entry block has no
    // predecessors, so its repair region is exactly itself.
    let mut b = FunctionBuilder::new("chain", 1);
    let entry = b.create_block();
    let tail: Vec<Block> = (0..19).map(|_| b.create_block()).collect();
    b.set_entry(entry);
    b.switch_to_block(entry);
    let x = b.param(0);
    b.jump(tail[0]);
    for i in 0..tail.len() {
        b.switch_to_block(tail[i]);
        match tail.get(i + 1) {
            Some(&next) => {
                b.jump(next);
            }
            None => {
                b.ret(Some(x));
            }
        }
    }
    let mut func = b.finish();

    let mut analyses = FunctionAnalyses::new();
    let _ = analyses.liveness_sets(&func);
    let before = analyses.counts();
    assert_eq!(before.liveness_sets, 1);

    // Insert one copy into the entry block and declare it per block.
    let dst = func.new_value();
    func.insert_inst(entry, 1, InstData::Copy { dst, src: x });
    analyses.invalidate_instructions_in_blocks(&func, &[entry]);
    let repaired = analyses.liveness_sets(&func);
    assert!(repaired.live_out(entry).contains(x), "x flows to the return through the chain");

    let after = analyses.counts();
    assert_eq!(
        after.liveness_sets, before.liveness_sets,
        "per-block invalidation must not trigger a whole-function recompute"
    );
    assert_eq!(after.inst_versions, before.inst_versions + 1);
    assert_eq!(after.liveness_incremental_repairs, before.liveness_incremental_repairs + 1);
    let region = after.liveness_block_recomputes - before.liveness_block_recomputes;
    assert_eq!(region, 1, "the entry block's repair region is itself alone");
    assert!((region as usize) < func.num_blocks());

    // A later full invalidation still recomputes exactly once.
    analyses.invalidate_instructions();
    let _ = analyses.liveness_sets(&func);
    assert_eq!(analyses.counts().liveness_sets, before.liveness_sets + 1);
}

/// The allocation half of the steady-state claim, stage by stage: once the
/// pool, the generator scratch, the analysis cache and the translation
/// scratch are warm, one full cycle — build a function into a recycled pool
/// slot, convert it to optimized SSA through the cached passes, pin the call
/// conventions, translate it out of SSA, retire the slot — performs no heap
/// allocation at all. Four distinct seeds cycle through one slot so the
/// high-water marks cover every shape before the measured pass.
#[test]
fn warm_pooled_generate_ssa_translate_cycle_is_allocation_free() {
    use ossa_bench::alloc::allocation_count;
    use out_of_ssa::cfggen::{generate_ssa_function_into_cached, GenScratch};
    use out_of_ssa::destruct::EngineWorker;
    use out_of_ssa::ir::FunctionPool;

    let config = GenConfig::small();
    let options = OutOfSsaOptions::default();
    let mut pool = FunctionPool::new();
    let mut gen_analyses = FunctionAnalyses::new();
    let mut gen_scratch = GenScratch::new();
    let mut worker = EngineWorker::new();

    let cycle = |seed: u64,
                 pool: &mut FunctionPool,
                 gen_analyses: &mut FunctionAnalyses,
                 gen_scratch: &mut GenScratch,
                 worker: &mut EngineWorker| {
        let slot = pool.checkout();
        let (mut func, _) = generate_ssa_function_into_cached(
            slot,
            "warm",
            &config,
            seed,
            gen_analyses,
            gen_scratch,
        );
        pin_call_conventions(&mut func);
        worker.analyses.invalidate_cfg();
        let _ = out_of_ssa::destruct::translate_out_of_ssa_scratch(
            &mut func,
            &options,
            &mut worker.analyses,
            &mut worker.scratch,
        );
        pool.retire(func);
    };

    // Two warm-up rounds over all four seeds: the first grows every buffer,
    // the second catches growth that only happens on a recycled slot.
    for _ in 0..2 {
        for seed in 0..4u64 {
            cycle(seed, &mut pool, &mut gen_analyses, &mut gen_scratch, &mut worker);
        }
    }

    // Two measured rounds over the same seeds.
    let before = allocation_count();
    for seed in 0..4u64 {
        cycle(seed, &mut pool, &mut gen_analyses, &mut gen_scratch, &mut worker);
    }
    let mid = allocation_count();
    for seed in 0..4u64 {
        cycle(seed, &mut pool, &mut gen_analyses, &mut gen_scratch, &mut worker);
    }
    let after = allocation_count();
    let (first, second) = (mid - before, after - mid);

    // Release builds run the exact invariant: a warm cycle through recycled
    // pool storage allocates nothing at all. Debug builds also allocate
    // inside `debug_assert!`-only verification paths (SSA shape stamps,
    // structural re-checks), so there the assertion is flatness instead: a
    // warm round costs exactly what the previous warm round cost — steady
    // state, not growth.
    #[cfg(not(debug_assertions))]
    assert_eq!(
        first + second,
        0,
        "warm generate→SSA→pin→translate→retire cycle allocated {} times over 8 functions",
        first + second
    );
    assert_eq!(
        first, second,
        "warm cycle allocations drifted between identical rounds: {first} then {second}"
    );
}

/// Sanity anchor for the counters themselves: values of `v0.index()` and
/// friends used above really walk every value.
#[test]
fn value_iteration_covers_every_index() {
    let (func, _) = generate_ssa_function("iter", &GenConfig::small(), 1);
    let indices: Vec<usize> = func.values().map(|v| v.index()).collect();
    assert_eq!(indices, (0..func.num_values()).collect::<Vec<_>>());
}
