//! Chaos campaigns against the translation service (`--features
//! failpoints`): deterministic seeded stall and panic injection prove the
//! overload model end to end — every accepted request completes or fails
//! *typed*, survivors are bit-identical to a fault-free run, and deadlines
//! bound even a wedged worker.
//!
//! The injectors are process-global, so this lives in its own test binary
//! and the campaigns serialise on a local mutex.
#![cfg(feature = "failpoints")]

use std::sync::Mutex;
use std::time::Duration;

use out_of_ssa::cfggen::{generate_ssa_function, GenConfig};
use out_of_ssa::destruct::fault::failpoints;
use out_of_ssa::destruct::{
    translate_function_isolated_policy, EnginePolicy, Limits, OutOfSsaOptions, TranslateError,
    TranslatePhase, TranslateScratch, ValidationMode,
};
use out_of_ssa::ir::Function;
use out_of_ssa::liveness::FunctionAnalyses;
use out_of_ssa::service::{ServiceConfig, ServiceError, TranslationService};

/// Serialises the campaigns: the failpoint configuration is process-wide.
static SERIAL: Mutex<()> = Mutex::new(());

const CORPUS: u64 = 24;

fn input(seed: u64) -> Function {
    generate_ssa_function(format!("chaos_{seed}"), &GenConfig::default(), seed).0
}

/// Fault-free reference translation under `options` + `validation` (what
/// the service's rung of that configuration must reproduce bit-for-bit).
fn reference(seed: u64, options: &OutOfSsaOptions, validation: ValidationMode) -> Function {
    let mut func = input(seed);
    translate_function_isolated_policy(
        &mut func,
        options,
        &Limits::default(),
        &EnginePolicy::validating(validation),
        &mut FunctionAnalyses::new(),
        &mut TranslateScratch::new(),
    )
    .expect("healthy input translates");
    func
}

/// The seeds whose function would stall at *some* phase under the armed
/// campaign (precomputed from the pure site predicate).
fn stalled_seeds() -> Vec<u64> {
    (0..CORPUS)
        .filter(|seed| {
            let name = format!("chaos_{seed}");
            TranslatePhase::ALL.iter().any(|&phase| failpoints::should_stall(&name, phase))
        })
        .collect()
}

#[test]
fn stalls_with_tight_deadlines_fail_typed_and_never_corrupt_survivors() {
    let _guard = SERIAL.lock().unwrap_or_else(|poison| poison.into_inner());
    let options = OutOfSsaOptions::default();
    let validation = ValidationMode::Structural;
    let expected: Vec<_> = (0..CORPUS).map(|s| reference(s, &options, validation)).collect();

    failpoints::configure_stall(failpoints::StallConfig {
        seed: 7,
        rate_per_mille: 70,
        phase: None,
        millis: 120,
    });
    let stalled = stalled_seeds();
    assert!(!stalled.is_empty(), "campaign selects at least one stall victim");
    assert!(stalled.len() < CORPUS as usize, "campaign leaves healthy requests too");

    // Deadline far below the stall: a stalled rung cannot finish, and the
    // cancellation token trips mid-stall, so every stalled request must
    // fail typed (in the stall, or expired in the queue behind one).
    let service = TranslationService::start(ServiceConfig {
        workers: 2,
        queue_capacity: CORPUS as usize,
        validation,
        retries: 2,
        default_deadline: Some(Duration::from_millis(40)),
        ..ServiceConfig::default()
    });
    let tickets: Vec<_> =
        (0..CORPUS).map(|seed| service.submit(input(seed)).expect("admitted")).collect();
    let responses: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
    failpoints::clear_stall();

    for (seed, response) in responses.iter().enumerate() {
        match &response.outcome {
            Ok(completed) => {
                // A survivor is always full-fidelity rung 0 here (a retry
                // rung would have started past the expired deadline), and
                // bit-identical to the fault-free engine.
                assert_eq!(completed.rung, 0, "request {seed}");
                assert_eq!(completed.func, expected[seed], "request {seed} corrupted");
                assert!(
                    !stalled.contains(&(seed as u64)),
                    "request {seed} stalled 120ms yet beat a 40ms deadline"
                );
            }
            Err(ServiceError::ExpiredInQueue) => {
                assert!(response.returned.is_some(), "expired input handed back");
            }
            Err(ServiceError::Translate(error)) => {
                assert!(
                    matches!(error, TranslateError::DeadlineExceeded { .. }),
                    "request {seed}: stalls under deadline surface as deadline expiry, got {error}"
                );
                assert!(response.returned.is_some(), "failed input handed back restored");
            }
            Err(other) => panic!("request {seed}: unexpected outcome {other}"),
        }
    }
    // Every stall victim failed typed; none hung, none delivered garbage.
    for &seed in &stalled {
        assert!(
            responses[seed as usize].outcome.is_err(),
            "stalled request {seed} cannot complete under a 40ms deadline"
        );
    }
    let stats = service.shutdown();
    assert_eq!(stats.accepted, CORPUS);
    assert_eq!(stats.resolved(), CORPUS);
    assert!(stats.deadline_exceeded + stats.expired_in_queue >= stalled.len() as u64);
    // The watchdogs bound tail latency: nothing waited out the full stall
    // pipeline (histogram p99 is a conservative upper bound).
    assert!(stats.total.quantile(0.99) < 5.0, "p99 {}", stats.total.quantile(0.99));
}

#[test]
fn stalls_with_generous_deadlines_only_delay_and_every_output_is_identical() {
    let _guard = SERIAL.lock().unwrap_or_else(|poison| poison.into_inner());
    let options = OutOfSsaOptions::default();
    let validation = ValidationMode::Structural;
    let expected: Vec<_> = (0..CORPUS).map(|s| reference(s, &options, validation)).collect();

    failpoints::configure_stall(failpoints::StallConfig {
        seed: 7,
        rate_per_mille: 70,
        phase: None,
        millis: 120,
    });
    assert!(!stalled_seeds().is_empty());

    let service = TranslationService::start(ServiceConfig {
        workers: 2,
        queue_capacity: CORPUS as usize,
        validation,
        retries: 2,
        default_deadline: Some(Duration::from_secs(30)),
        ..ServiceConfig::default()
    });
    let tickets: Vec<_> =
        (0..CORPUS).map(|seed| service.submit(input(seed)).expect("admitted")).collect();
    let responses: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
    failpoints::clear_stall();

    // A stall under a generous deadline is pure delay: every request
    // completes on rung 0 and every output is bit-identical.
    for (seed, response) in responses.iter().enumerate() {
        let completed = response.outcome.as_ref().expect("stall is delay, not failure");
        assert_eq!(completed.rung, 0, "request {seed}");
        assert_eq!(completed.func, expected[seed], "request {seed} corrupted by a stall");
    }
    let stats = service.shutdown();
    assert_eq!(stats.completed, CORPUS);
    assert_eq!(stats.failed + stats.deadline_exceeded + stats.expired_in_queue, 0);
    assert!(stats.total.quantile(0.99) < 10.0);
}

#[test]
fn injected_panics_are_healed_by_the_ladder_and_recoveries_are_conservative() {
    let _guard = SERIAL.lock().unwrap_or_else(|poison| poison.into_inner());
    let options = OutOfSsaOptions::default();
    let validation = ValidationMode::Structural;
    let full: Vec<_> = (0..CORPUS).map(|s| reference(s, &options, validation)).collect();
    // Rung 1 of the service ladder: conservative options, validation
    // dropped a tier (Structural → Off).
    let conservative: Vec<_> = (0..CORPUS)
        .map(|s| reference(s, &options.conservative_fallback(), ValidationMode::Off))
        .collect();

    failpoints::configure(failpoints::FailpointConfig {
        seed: 11,
        rate_per_mille: 400,
        phase: Some(TranslatePhase::Coalesce),
    });
    let poisoned: Vec<u64> = (0..CORPUS)
        .filter(|seed| failpoints::should_fail(&format!("chaos_{seed}"), TranslatePhase::Coalesce))
        .collect();
    assert!(!poisoned.is_empty() && poisoned.len() < CORPUS as usize);

    failpoints::silence_injected_panics();
    let service = TranslationService::start(ServiceConfig {
        workers: 2,
        queue_capacity: CORPUS as usize,
        validation,
        retries: 2,
        ..ServiceConfig::default()
    });
    let tickets: Vec<_> =
        (0..CORPUS).map(|seed| service.submit(input(seed)).expect("admitted")).collect();
    let responses: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
    failpoints::clear();

    for (seed, response) in responses.iter().enumerate() {
        let completed = response.outcome.as_ref().expect("the ladder heals injected panics");
        if poisoned.contains(&(seed as u64)) {
            // Injection fires on rung 0 only; the conservative retry rung
            // healed it and its output matches the conservative reference.
            assert_eq!(completed.rung, 1, "request {seed}");
            assert_eq!(completed.func, conservative[seed], "request {seed}");
        } else {
            assert_eq!(completed.rung, 0, "request {seed}");
            assert_eq!(completed.func, full[seed], "request {seed}");
        }
    }
    let stats = service.shutdown();
    assert_eq!(stats.completed, CORPUS);
    assert_eq!(stats.recovered, poisoned.len() as u64);
}
