//! Property-based tests on the core invariants.

use proptest::prelude::*;

use out_of_ssa::cfggen::{generate_ssa_function, GenConfig};
use out_of_ssa::destruct::{
    minimum_copies, sequentialize, translate_out_of_ssa, OutOfSsaOptions,
};
use out_of_ssa::interp::{same_behaviour, Interpreter};
use out_of_ssa::ir::entity::EntityRef;
use out_of_ssa::ir::{CopyPair, Value};

/// Strategy producing a well-formed parallel copy: unique destinations,
/// arbitrary sources drawn from a small universe.
fn parallel_copy_strategy() -> impl Strategy<Value = Vec<CopyPair>> {
    prop::collection::vec(0usize..8, 1..8).prop_map(|srcs| {
        srcs.into_iter()
            .enumerate()
            .filter(|(dst, src)| dst != src)
            .map(|(dst, src)| CopyPair { dst: Value::new(dst), src: Value::new(src) })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Algorithm 1 emits a sequence equivalent to the parallel copy and uses
    /// the minimum number of copies.
    #[test]
    fn sequentialization_is_correct_and_minimal(moves in parallel_copy_strategy()) {
        let temp = Value::new(100);
        let seq = sequentialize(&moves, temp);
        prop_assert_eq!(seq.copies.len(), minimum_copies(&moves));

        // Simulate both with distinct tokens per value.
        let mut initial = std::collections::HashMap::new();
        for m in &moves {
            initial.entry(m.dst).or_insert_with(|| 1000 + m.dst.index() as i64);
            initial.entry(m.src).or_insert_with(|| 1000 + m.src.index() as i64);
        }
        initial.insert(temp, -1);
        let mut parallel = initial.clone();
        let reads: Vec<(Value, i64)> = moves.iter().map(|m| (m.dst, initial[&m.src])).collect();
        for (dst, v) in reads {
            parallel.insert(dst, v);
        }
        let mut sequential = initial.clone();
        for c in &seq.copies {
            let v = sequential[&c.src];
            sequential.insert(c.dst, v);
        }
        for (&value, &expected) in &parallel {
            if value != temp {
                prop_assert_eq!(sequential[&value], expected);
            }
        }
    }

    /// The default out-of-SSA translation preserves the observable behaviour
    /// of randomly generated programs.
    #[test]
    fn translation_preserves_behaviour(seed in 0u64..500, a in -20i64..20, b in -20i64..20) {
        let (original, _) = generate_ssa_function(format!("p{seed}"), &GenConfig::small(), seed);
        let mut translated = original.clone();
        translate_out_of_ssa(&mut translated, &OutOfSsaOptions::default());
        let args = vec![a, b, a ^ b];
        let want = Interpreter::new().run(&original, &args).expect("original runs");
        let got = Interpreter::new().run(&translated, &args).expect("translated runs");
        prop_assert!(same_behaviour(&want, &got));
        prop_assert_eq!(translated.count_phis(), 0);
    }

    /// The eager and virtualized engines produce code with identical
    /// behaviour (the paper's claim that virtualization does not change code
    /// quality guarantees, only engineering).
    #[test]
    fn eager_and_virtualized_agree_behaviourally(seed in 500u64..700) {
        let (original, _) = generate_ssa_function(format!("v{seed}"), &GenConfig::small(), seed);
        let mut eager = original.clone();
        let mut virt = original.clone();
        translate_out_of_ssa(&mut eager, &OutOfSsaOptions::value());
        translate_out_of_ssa(&mut virt, &OutOfSsaOptions::value_is());
        for args in [vec![1, 2, 3], vec![-5, 4, 0]] {
            let a = Interpreter::new().run(&eager, &args).expect("eager runs");
            let b = Interpreter::new().run(&virt, &args).expect("virtualized runs");
            let reference = Interpreter::new().run(&original, &args).expect("original runs");
            prop_assert!(same_behaviour(&reference, &a));
            prop_assert!(same_behaviour(&reference, &b));
        }
    }
}
