//! Property-style tests on the core invariants.
//!
//! The offline build environment has no `proptest`, so the properties are
//! exercised with the workspace's own deterministic PRNG
//! (`ossa_cfggen::rng::SmallRng`) over a fixed number of cases per property.

use out_of_ssa::cfggen::rng::SmallRng;
use out_of_ssa::cfggen::{generate_ssa_function, GenConfig};
use out_of_ssa::destruct::{
    minimum_copies, translate_corpus, translate_out_of_ssa, try_sequentialize, OutOfSsaOptions,
};
use out_of_ssa::interp::{same_behaviour, Interpreter};
use out_of_ssa::ir::entity::EntityRef;
use out_of_ssa::ir::{ControlFlowGraph, CopyPair, DominatorTree, Function, Value};
use out_of_ssa::liveness::{BlockLiveness, FastLiveness, LiveRangeInfo, LivenessSets};

/// The seven Figure 5 variants, in the paper's order — read from the shared
/// single source of truth so a variant added to the bench list is
/// automatically exercised against the interpreter oracle here.
fn figure5_variants() -> Vec<(&'static str, OutOfSsaOptions)> {
    OutOfSsaOptions::figure5_variants().into_iter().collect()
}

/// Generates a well-formed random parallel copy: unique destinations,
/// arbitrary sources drawn from a small universe.
fn random_parallel_copy(rng: &mut SmallRng) -> Vec<CopyPair> {
    let n = rng.range_inclusive(1, 7);
    (0..n)
        .map(|dst| (dst, rng.below(n + 2)))
        .filter(|&(dst, src)| dst != src)
        .map(|(dst, src)| CopyPair { dst: Value::new(dst), src: Value::new(src) })
        .collect()
}

/// Algorithm 1 emits a sequence equivalent to the parallel copy and uses the
/// minimum number of copies.
#[test]
fn sequentialization_is_correct_and_minimal() {
    let mut rng = SmallRng::seed_from_u64(0x5e9);
    for case in 0..256 {
        let moves = random_parallel_copy(&mut rng);
        let temp = Value::new(100);
        let seq = try_sequentialize(&moves, temp).expect("unique destinations by construction");
        assert_eq!(
            seq.copies.len(),
            minimum_copies(&moves),
            "case {case}: non-minimal sequentialization of {moves:?}"
        );

        // Simulate both with distinct tokens per value.
        let mut initial = std::collections::HashMap::new();
        for m in &moves {
            initial.entry(m.dst).or_insert_with(|| 1000 + m.dst.index() as i64);
            initial.entry(m.src).or_insert_with(|| 1000 + m.src.index() as i64);
        }
        initial.insert(temp, -1);
        let mut parallel = initial.clone();
        let reads: Vec<(Value, i64)> = moves.iter().map(|m| (m.dst, initial[&m.src])).collect();
        for (dst, v) in reads {
            parallel.insert(dst, v);
        }
        let mut sequential = initial.clone();
        for c in &seq.copies {
            let v = sequential[&c.src];
            sequential.insert(c.dst, v);
        }
        for (&value, &expected) in &parallel {
            if value != temp {
                assert_eq!(sequential[&value], expected, "case {case}: {value} differs");
            }
        }
    }
}

/// Every Figure 5 variant preserves the observable behaviour of randomly
/// generated programs, checked against the pre-translation interpreter
/// oracle.
#[test]
fn every_variant_preserves_behaviour_on_generated_cfgs() {
    for seed in 0..40u64 {
        let (original, _) = generate_ssa_function(format!("p{seed}"), &GenConfig::small(), seed);
        // The shared deterministic argument sets (also used by the runtime
        // differential validator), re-seeded per function.
        let arg_sets = out_of_ssa::interp::argument_sets(2009 ^ seed, 3, 3);
        let oracle: Vec<_> = arg_sets
            .iter()
            .map(|args| Interpreter::new().run(&original, args).expect("original runs"))
            .collect();
        for (name, options) in figure5_variants() {
            let mut translated = original.clone();
            translate_out_of_ssa(&mut translated, &options);
            assert_eq!(translated.count_phis(), 0, "{name}: phis remain for seed {seed}");
            for (args, want) in arg_sets.iter().zip(&oracle) {
                let got = Interpreter::new().run(&translated, args).expect("translated runs");
                assert!(
                    same_behaviour(want, &got),
                    "{name}: seed {seed} differs on {args:?}\n{}",
                    translated.display()
                );
            }
        }
    }
}

/// The eager and virtualized engines produce code with identical behaviour
/// (the paper's claim that virtualization does not change code quality
/// guarantees, only engineering).
#[test]
fn eager_and_virtualized_agree_behaviourally() {
    for seed in 500..540u64 {
        let (original, _) = generate_ssa_function(format!("v{seed}"), &GenConfig::small(), seed);
        let mut eager = original.clone();
        let mut virt = original.clone();
        translate_out_of_ssa(&mut eager, &OutOfSsaOptions::value());
        translate_out_of_ssa(&mut virt, &OutOfSsaOptions::value_is());
        for args in [vec![1, 2, 3], vec![-5, 4, 0]] {
            let a = Interpreter::new().run(&eager, &args).expect("eager runs");
            let b = Interpreter::new().run(&virt, &args).expect("virtualized runs");
            let reference = Interpreter::new().run(&original, &args).expect("original runs");
            assert!(same_behaviour(&reference, &a), "seed {seed}: eager differs");
            assert!(same_behaviour(&reference, &b), "seed {seed}: virtualized differs");
        }
    }
}

/// Returns `true` if every retreating edge of `func` has a target that
/// dominates its source — the reducibility condition under which the fast
/// liveness checker is specified (its docs call this out; the data-flow
/// [`LivenessSets`] remains the oracle for arbitrary graphs).
fn is_reducible(func: &Function, cfg: &ControlFlowGraph, domtree: &DominatorTree) -> bool {
    func.blocks().filter(|&b| cfg.is_reachable(b)).all(|block| {
        cfg.succs(block).iter().all(|&succ| {
            domtree.rpo_index(succ) > domtree.rpo_index(block) || domtree.dominates(succ, block)
        })
    })
}

/// The optimized fast liveness checker (in-place worklist fixpoint with
/// reusable scratch bit-sets) agrees with the naive reference data-flow
/// analysis on randomly generated small CFGs, for every block × value
/// query, both live-in and live-out. Irreducible graphs (which the
/// checker's precomputation is documented not to support) are skipped — but
/// must be rare enough that the property still exercises a large sample.
#[test]
fn fast_liveness_matches_reference_dataflow_on_random_cfgs() {
    let mut checked = 0usize;
    for seed in 0..60u64 {
        let (func, _) = generate_ssa_function(format!("live{seed}"), &GenConfig::small(), seed);
        let cfg = ControlFlowGraph::compute(&func);
        let domtree = DominatorTree::compute(&func, &cfg);
        if !is_reducible(&func, &cfg, &domtree) {
            continue;
        }
        checked += 1;
        let reference = LivenessSets::compute(&func, &cfg);
        let info = LiveRangeInfo::compute(&func);
        let checker = FastLiveness::compute(&func, &cfg, &domtree);
        let fast = checker.query(&cfg, &domtree, &info);
        for block in func.blocks() {
            if !cfg.is_reachable(block) {
                continue;
            }
            for value in func.values() {
                assert_eq!(
                    reference.is_live_in(block, value),
                    fast.is_live_in(block, value),
                    "seed {seed}: live-in mismatch for {value} at {block}\n{}",
                    func.display()
                );
                assert_eq!(
                    reference.is_live_out(block, value),
                    fast.is_live_out(block, value),
                    "seed {seed}: live-out mismatch for {value} at {block}\n{}",
                    func.display()
                );
            }
        }
    }
    assert!(checked >= 50, "only {checked} of 60 random functions were reducible");
}

/// On larger random CFGs the fast checker is *sound* with respect to the
/// reference data flow: it never reports dead where the reference says
/// live. (The converse can fail: deeply nested loops whose φ-def block lies
/// on the only path to a closed back-edge target make the checker
/// over-approximate — a quality, not correctness, matter, present since the
/// seed and tracked in ROADMAP.md.)
#[test]
fn fast_liveness_is_sound_on_larger_random_cfgs() {
    let mut checked = 0usize;
    for seed in 0..40u64 {
        let (func, _) = generate_ssa_function(format!("big{seed}"), &GenConfig::default(), seed);
        let cfg = ControlFlowGraph::compute(&func);
        let domtree = DominatorTree::compute(&func, &cfg);
        if !is_reducible(&func, &cfg, &domtree) {
            continue;
        }
        checked += 1;
        let reference = LivenessSets::compute(&func, &cfg);
        let info = LiveRangeInfo::compute(&func);
        let checker = FastLiveness::compute(&func, &cfg, &domtree);
        let fast = checker.query(&cfg, &domtree, &info);
        for block in func.blocks() {
            if !cfg.is_reachable(block) {
                continue;
            }
            for value in func.values() {
                if reference.is_live_in(block, value) {
                    assert!(
                        fast.is_live_in(block, value),
                        "seed {seed}: fast checker misses live-in {value} at {block}"
                    );
                }
                if reference.is_live_out(block, value) {
                    assert!(
                        fast.is_live_out(block, value),
                        "seed {seed}: fast checker misses live-out {value} at {block}"
                    );
                }
            }
        }
    }
    assert!(checked >= 30, "only {checked} of 40 larger random functions were reducible");
}

/// The profitability early exit (`abort_threshold`) trades static copies
/// for decision time but never behaviour: at `0.0` (the default) the
/// translation is bit-identical to the knob-free engine, and at any
/// positive threshold the affinity loop's processed prefix is unchanged,
/// so the result coalesces at most as many moves (never more) and still
/// matches the interpreter oracle.
#[test]
fn abort_threshold_is_bit_identical_off_and_sound_on() {
    for seed in 900..920u64 {
        let (original, _) = generate_ssa_function(format!("t{seed}"), &GenConfig::small(), seed);
        let args = vec![3, -7, 11];
        let oracle = Interpreter::new().run(&original, &args).expect("original runs");

        let mut default_out = original.clone();
        let default_stats = translate_out_of_ssa(&mut default_out, &OutOfSsaOptions::default());

        // Explicit 0.0 is the default: identical output and stats.
        let mut zero_out = original.clone();
        let zero_stats = translate_out_of_ssa(
            &mut zero_out,
            &OutOfSsaOptions::default().with_abort_threshold(0.0),
        );
        assert_eq!(default_stats, zero_stats, "seed {seed}: threshold 0.0 changed stats");
        assert_eq!(default_out, zero_out, "seed {seed}: threshold 0.0 changed output");

        for threshold in [0.5, 2.0, 1e9] {
            let mut out = original.clone();
            let stats = translate_out_of_ssa(
                &mut out,
                &OutOfSsaOptions::default().with_abort_threshold(threshold),
            );
            assert!(
                stats.moves_coalesced <= default_stats.moves_coalesced,
                "seed {seed}: threshold {threshold} coalesced more than the exhaustive loop"
            );
            assert_eq!(out.count_phis(), 0, "seed {seed}: phis remain at {threshold}");
            let got = Interpreter::new().run(&out, &args).expect("translated runs");
            assert!(
                same_behaviour(&oracle, &got),
                "seed {seed}: threshold {threshold} changed behaviour\n{}",
                out.display()
            );
        }
    }
}

/// Pins the known FastLiveness over-approximation repro tracked in
/// ROADMAP.md ("fix FastLiveness precision"; seed `live27` of
/// [`generate_ssa_function`] with the default [`GenConfig`]): the checker
/// reports exactly one spurious liveness — one value live-in at one block
/// where the reference data flow says dead — and misses nothing (sound).
/// The conservative answer costs coalescing opportunities, not correctness.
/// When the precision fix lands (its own PR, with fresh Figure 5/6 numbers
/// and a deliberate `fingerprint --write`), this test fails and the
/// expectation below flips to "no over-approximations" — an explicit
/// decision instead of a silent behaviour change.
#[test]
fn fast_liveness_live27_over_approximation_is_pinned() {
    let (func, _) = generate_ssa_function("live27", &GenConfig::default(), 27);
    let cfg = ControlFlowGraph::compute(&func);
    let domtree = DominatorTree::compute(&func, &cfg);
    assert!(is_reducible(&func, &cfg, &domtree), "live27 repro must stay reducible");
    let reference = LivenessSets::compute(&func, &cfg);
    let info = LiveRangeInfo::compute(&func);
    let checker = FastLiveness::compute(&func, &cfg, &domtree);
    let fast = checker.query(&cfg, &domtree, &info);
    let mut spurious: Vec<String> = Vec::new();
    for block in func.blocks() {
        if !cfg.is_reachable(block) {
            continue;
        }
        for value in func.values() {
            let (ref_in, fast_in) =
                (reference.is_live_in(block, value), fast.is_live_in(block, value));
            let (ref_out, fast_out) =
                (reference.is_live_out(block, value), fast.is_live_out(block, value));
            // Soundness first: the fast checker must never miss a liveness.
            assert!(fast_in || !ref_in, "live27: fast checker misses live-in {value} at {block}");
            assert!(
                fast_out || !ref_out,
                "live27: fast checker misses live-out {value} at {block}"
            );
            if fast_in && !ref_in {
                spurious.push(format!("live-in {value} at {block}"));
            }
            if fast_out && !ref_out {
                spurious.push(format!("live-out {value} at {block}"));
            }
        }
    }
    assert_eq!(
        spurious,
        vec!["live-in v65 at bb4".to_string()],
        "live27 over-approximation changed — if this is the ROADMAP precision fix, \
         flip this expectation to an empty list and refresh the Figure 5/6 numbers"
    );
}

/// The batch engine and the serial per-function entry point are
/// bit-identical, for every Figure 5 variant, on a generated corpus.
#[test]
fn batch_engine_matches_serial_translation() {
    let corpus: Vec<Function> = (700..716u64)
        .map(|seed| generate_ssa_function(format!("b{seed}"), &GenConfig::small(), seed).0)
        .collect();
    for (name, options) in figure5_variants() {
        let mut serial = corpus.clone();
        let mut batch = corpus.clone();
        let serial_stats: Vec<_> =
            serial.iter_mut().map(|f| translate_out_of_ssa(f, &options)).collect();
        let batch_stats = translate_corpus(&mut batch, &options);
        assert_eq!(serial_stats, batch_stats.per_function, "{name}: stats differ");
        for (a, b) in serial.iter().zip(&batch) {
            assert_eq!(a, b, "{name}: translated function {} differs", a.name);
        }
    }
}
