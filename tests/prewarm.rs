//! [`FunctionPool::prewarm`] at the streaming-engine level: pre-reserving
//! function shells must cut the warm-up allocations of the *first* streaming
//! pass (the pass every later one recycles from) without changing a single
//! translated byte.

use out_of_ssa::cfggen::{generate_ssa_function_into, GenConfig};
use out_of_ssa::destruct::{translate_stream_pooled_serial, EngineWorker, OutOfSsaOptions};
use out_of_ssa::ir::{Function, FunctionPool};

/// Counting allocator for the warm-up assertions below. Registered per test
/// binary; only this file's tests see it.
#[global_allocator]
static ALLOC: ossa_bench::alloc::CountingAllocator = ossa_bench::alloc::CountingAllocator;

const STREAM_LEN: u64 = 8;

/// A pool-aware source regenerating the same small corpus into checked-out
/// slots.
fn source() -> impl FnMut(&mut FunctionPool) -> Option<Function> {
    let mut next = 0u64;
    move |pool: &mut FunctionPool| {
        if next >= STREAM_LEN {
            return None;
        }
        let seed = next;
        next += 1;
        let slot = pool.checkout();
        Some(generate_ssa_function_into(slot, format!("pw{seed}"), &GenConfig::small(), seed).0)
    }
}

/// One full first pass through a fresh engine worker, returning the
/// allocation count of the pass and the translated functions.
fn first_pass(worker: &mut EngineWorker) -> (u64, Vec<Function>) {
    let options = OutOfSsaOptions::default();
    let mut outputs = Vec::new();
    let mut src = source();
    let before = ossa_bench::alloc::allocation_count();
    translate_stream_pooled_serial(&mut src, worker, &options, |_, func, _| {
        outputs.push(func.clone());
    });
    let allocations = ossa_bench::alloc::allocation_count() - before;
    (allocations, outputs)
}

#[test]
fn prewarmed_pool_cuts_first_pass_allocations() {
    // Cold worker: every checkout allocates a fresh shell that then grows
    // its arenas from nothing while the generator builds into it.
    let mut cold_worker = EngineWorker::new();
    let (cold_allocs, cold_outputs) = first_pass(&mut cold_worker);
    assert_eq!(cold_worker.pool.stats().recycled, STREAM_LEN - 1);

    // Prewarmed worker: the free list starts with shells whose instruction
    // and value arenas are reserved at a generous estimate, so the first
    // pass skips the cold pass's incremental arena growth. The prewarm
    // itself is *outside* the measured window — it is start-up cost, paid
    // before the stream arrives (that is its point).
    let mut warm_worker = EngineWorker::new();
    warm_worker.pool.prewarm(2, 512);
    let (warm_allocs, warm_outputs) = first_pass(&mut warm_worker);

    // Every checkout of the prewarmed pass was served from the free list...
    assert_eq!(warm_worker.pool.stats().recycled, STREAM_LEN);
    // ...the translated functions are bit-identical to the cold pass...
    assert_eq!(warm_outputs, cold_outputs);
    // ...and the warm-up allocation count dropped.
    assert!(
        warm_allocs < cold_allocs,
        "prewarmed first pass must allocate less: {warm_allocs} vs cold {cold_allocs}"
    );
}
