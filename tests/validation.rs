//! Self-checking translation at integration level: the validating engines
//! must be bit-identical to the pass-through engines on healthy corpora, and
//! — under `--features failpoints` — the differential validator must catch
//! every injected output corruption (the paper's lost-copy and swap bug
//! families) while the recovery ladder heals every poisoned function on the
//! conservative retry.

use out_of_ssa::cfggen::{generate_function, generate_ssa_function, GenConfig};
use out_of_ssa::destruct::{
    translate_corpus_isolated_policy, translate_corpus_isolated_with, EnginePolicy, Limits,
    OutOfSsaOptions, RecoveryOutcome, RecoveryPolicy, ValidationMode,
};
use out_of_ssa::ir::Function;
use out_of_ssa::Pipeline;

/// A small corpus of distinct healthy SSA functions.
fn corpus(n: usize) -> Vec<Function> {
    (0..n as u64)
        .map(|seed| generate_ssa_function(format!("sc{seed}"), &GenConfig::small(), seed).0)
        .collect()
}

#[test]
fn validating_engines_match_passthrough_on_a_healthy_corpus() {
    let options = OutOfSsaOptions::default();
    let mut reference = corpus(12);
    let reference_stats =
        translate_corpus_isolated_with(&mut reference, &options, &Limits::UNBOUNDED, 1);
    assert_eq!(reference_stats.num_errors(), 0);

    for mode in [ValidationMode::Structural, ValidationMode::Differential] {
        for threads in [1, 3] {
            let mut checked = corpus(12);
            let policy = EnginePolicy::validating(mode).with_retries(1);
            let stats = translate_corpus_isolated_policy(
                &mut checked,
                &options,
                &Limits::UNBOUNDED,
                &policy,
                threads,
            );
            assert_eq!(stats.num_errors(), 0, "{mode:?}/{threads}");
            assert_eq!(stats.validation_failures(), 0, "{mode:?}/{threads}");
            assert_eq!(stats.recovered_functions(), 0, "{mode:?}/{threads}");
            assert_eq!(checked, reference, "{mode:?}/{threads}: outputs diverged");
            for (result, expected) in stats.results.iter().zip(&reference_stats.results) {
                let (stats, expected) = (result.as_ref().unwrap(), expected.as_ref().unwrap());
                assert_eq!(stats.recovery, RecoveryOutcome::Clean);
                assert_eq!(stats, expected, "{mode:?}/{threads}: stats diverged");
            }
        }
    }
}

#[test]
fn validating_pipeline_matches_plain_runs_on_healthy_input() {
    // The pipeline ingests pre-SSA (virtual-register) code.
    let func = generate_function("sc_pipe", &GenConfig::small(), 17);

    let mut plain = func.clone();
    let report = Pipeline::new(OutOfSsaOptions::default()).run(&mut plain);

    let mut checked = func.clone();
    let mut pipeline = Pipeline::new(OutOfSsaOptions::default())
        .with_validation(ValidationMode::Differential)
        .with_recovery(RecoveryPolicy::retries(1));
    let checked_report = pipeline.try_run(&mut checked).unwrap();
    assert_eq!(checked, plain);
    assert_eq!(checked_report.translation, report.translation);
    assert_eq!(checked_report.translation.recovery, RecoveryOutcome::Clean);
}

/// Corruption and recovery campaigns — the `failpoints` feature only.
#[cfg(feature = "failpoints")]
mod failpoints {
    use super::*;
    use out_of_ssa::destruct::fault::failpoints::{
        clear, clear_corruption, configure, configure_corruption, should_corrupt, should_fail,
        silence_injected_panics, CorruptionConfig, CorruptionKind, FailpointConfig,
    };
    use out_of_ssa::destruct::{validate_structural, TranslateError, TranslatePhase};
    use std::sync::Mutex;

    /// The injector configuration is process-global: campaigns must not
    /// overlap, so every test in this module serialises on this lock.
    static CAMPAIGN: Mutex<()> = Mutex::new(());

    const N: usize = 16;

    /// Campaign parameters, tuned (by sweeping seeds against this corpus) so
    /// that every function the campaign structurally corrupts also
    /// *behaviourally* diverges on the differential argument sets — i.e. the
    /// injected miscompiles are real lost-copy/swap bugs, not dead-code
    /// perturbations the validator rightly accepts.
    fn campaigns() -> [CorruptionConfig; 2] {
        [
            CorruptionConfig { seed: 1, rate_per_mille: 400, kind: CorruptionKind::DropCopy },
            // Swappable windows (two *dependent* adjacent copies) are rare in
            // this corpus; select every function and let the window predicate
            // pick out the ones where the swap bug can exist at all.
            CorruptionConfig { seed: 0, rate_per_mille: 1000, kind: CorruptionKind::SwapCopies },
        ]
    }

    /// Translates the corpus fault-free (injectors must be disarmed).
    fn fault_free(options: &OutOfSsaOptions) -> Vec<Function> {
        let mut funcs = corpus(N);
        let stats = translate_corpus_isolated_with(&mut funcs, options, &Limits::UNBOUNDED, 1);
        assert_eq!(stats.num_errors(), 0);
        funcs
    }

    #[test]
    fn corruption_is_silent_without_validation_and_caught_exactly_by_differential() {
        let _guard = CAMPAIGN.lock().unwrap_or_else(|e| e.into_inner());
        let options = OutOfSsaOptions::default();
        clear();
        clear_corruption();
        let reference = fault_free(&options);

        for config in campaigns() {
            let kind = config.kind;
            configure_corruption(config);

            // Without validation the corruption is a *silent* miscompile:
            // the engine reports zero errors while a nonempty strict subset
            // of the corpus is mangled — the paper's motivating failure mode.
            let mut victims = corpus(N);
            let silent =
                translate_corpus_isolated_with(&mut victims, &options, &Limits::UNBOUNDED, 1);
            assert_eq!(silent.num_errors(), 0, "{kind:?}: corruption must not crash");
            let corrupted: Vec<usize> = (0..N).filter(|&i| victims[i] != reference[i]).collect();
            assert!(
                !corrupted.is_empty() && corrupted.len() < N,
                "{kind:?}: campaign must corrupt a strict subset, hit {corrupted:?}"
            );
            for &i in &corrupted {
                assert!(should_corrupt(&format!("sc{i}"), kind), "{kind:?}: unpredicted hit {i}");
            }

            // With differential validation, exactly the corrupted functions
            // are rejected as ValidationFailed at the Validate phase, and
            // every healthy neighbour stays bit-identical to the fault-free
            // run.
            for threads in [1, 3] {
                let mut checked = corpus(N);
                let stats = translate_corpus_isolated_policy(
                    &mut checked,
                    &options,
                    &Limits::UNBOUNDED,
                    &EnginePolicy::validating(ValidationMode::Differential),
                    threads,
                );
                let caught: Vec<usize> = stats.errors().map(|(i, _)| i).collect();
                assert_eq!(caught, corrupted, "{kind:?}/{threads}: caught set differs");
                assert_eq!(stats.validation_failures(), corrupted.len(), "{kind:?}/{threads}");
                for (i, error) in stats.errors() {
                    assert!(
                        matches!(error, TranslateError::ValidationFailed { .. }),
                        "{kind:?}/{threads}: function {i}: {error:?}"
                    );
                    assert_eq!(error.phase(), Some(TranslatePhase::Validate));
                }
                for i in 0..N {
                    if !corrupted.contains(&i) {
                        assert_eq!(checked[i], reference[i], "{kind:?}/{threads}: neighbour {i}");
                    }
                }
            }
            clear_corruption();
        }
    }

    #[test]
    fn structural_validation_catches_dropped_copies_without_the_interpreter() {
        let _guard = CAMPAIGN.lock().unwrap_or_else(|e| e.into_inner());
        let options = OutOfSsaOptions::default();
        clear();
        clear_corruption();
        let reference = fault_free(&options);

        // Corrupt as many functions as possible so the structural catch rate
        // is measured across every drop-corruptible copy window.
        let config =
            CorruptionConfig { seed: 1, rate_per_mille: 1000, kind: CorruptionKind::DropCopy };
        configure_corruption(config);
        let mut victims = corpus(N);
        let silent = translate_corpus_isolated_with(&mut victims, &options, &Limits::UNBOUNDED, 1);
        assert_eq!(silent.num_errors(), 0);
        let corrupted: Vec<usize> = (0..N).filter(|&i| victims[i] != reference[i]).collect();
        assert!(!corrupted.is_empty(), "campaign must corrupt something");

        // The must-define data flow predicts exactly which mangled outputs
        // the upgraded Structural mode catches: those where the dropped copy
        // leaves a use not defined on every path. (A drop shadowed by
        // another reaching def stays structurally healthy — only the
        // differential oracle can see it — hence "most", not "all".)
        let expected_caught: Vec<usize> = corrupted
            .iter()
            .copied()
            .filter(|&i| validate_structural(&victims[i], &options).is_err())
            .collect();
        assert!(
            !expected_caught.is_empty(),
            "the structural upgrade must catch dropped copies in this campaign"
        );

        for threads in [1, 3] {
            let mut checked = corpus(N);
            let stats = translate_corpus_isolated_policy(
                &mut checked,
                &options,
                &Limits::UNBOUNDED,
                &EnginePolicy::validating(ValidationMode::Structural),
                threads,
            );
            let caught: Vec<usize> = stats.errors().map(|(i, _)| i).collect();
            assert_eq!(caught, expected_caught, "threads={threads}: caught set differs");
            for (i, error) in stats.errors() {
                assert!(
                    matches!(error, TranslateError::ValidationFailed { .. }),
                    "threads={threads}: function {i}: {error:?}"
                );
            }
            // Functions the structural check cannot see stay silently
            // corrupted (that residue is Differential's job); healthy
            // neighbours stay bit-identical.
            for i in 0..N {
                if !corrupted.contains(&i) {
                    assert_eq!(checked[i], reference[i], "threads={threads}: neighbour {i}");
                }
            }
        }
        clear_corruption();
    }

    #[test]
    fn conservative_retry_heals_every_corrupted_function() {
        let _guard = CAMPAIGN.lock().unwrap_or_else(|e| e.into_inner());
        let options = OutOfSsaOptions::default();
        clear();
        clear_corruption();
        let reference = fault_free(&options);
        let conservative = fault_free(&options.conservative_fallback());

        for config in campaigns() {
            let kind = config.kind;

            // The corrupted subset, observed through the unvalidating engine.
            configure_corruption(config);
            let mut victims = corpus(N);
            translate_corpus_isolated_with(&mut victims, &options, &Limits::UNBOUNDED, 1);
            let corrupted: Vec<usize> = (0..N).filter(|&i| victims[i] != reference[i]).collect();
            assert!(!corrupted.is_empty(), "{kind:?}: campaign must corrupt something");

            // Injected corruption models a transient first-attempt fault:
            // with one conservative retry, every poisoned function heals.
            for threads in [1, 3] {
                let mut healed = corpus(N);
                let stats = translate_corpus_isolated_policy(
                    &mut healed,
                    &options,
                    &Limits::UNBOUNDED,
                    &EnginePolicy::validating(ValidationMode::Differential).with_retries(1),
                    threads,
                );
                assert_eq!(stats.num_errors(), 0, "{kind:?}/{threads}: retry must heal all");
                assert_eq!(stats.recovered_functions(), corrupted.len(), "{kind:?}/{threads}");
                assert_eq!(stats.validation_failures(), corrupted.len(), "{kind:?}/{threads}");
                for i in 0..N {
                    let fn_stats = stats.results[i].as_ref().unwrap();
                    if corrupted.contains(&i) {
                        // Healed on the conservative configuration: the
                        // output is bit-identical to a fault-free run of
                        // that configuration.
                        assert_eq!(
                            fn_stats.recovery,
                            RecoveryOutcome::Recovered { attempt: 2 },
                            "{kind:?}/{threads}: function {i}"
                        );
                        assert_eq!(fn_stats.validation_failures, 1);
                        assert_eq!(healed[i], conservative[i], "{kind:?}/{threads}: survivor {i}");
                    } else {
                        assert_eq!(fn_stats.recovery, RecoveryOutcome::Clean);
                        assert_eq!(fn_stats.validation_failures, 0);
                        assert_eq!(healed[i], reference[i], "{kind:?}/{threads}: neighbour {i}");
                    }
                }
            }
            clear_corruption();
        }
    }

    #[test]
    fn injected_panics_recover_on_the_conservative_retry() {
        let _guard = CAMPAIGN.lock().unwrap_or_else(|e| e.into_inner());
        silence_injected_panics();
        let options = OutOfSsaOptions::default();
        clear();
        clear_corruption();
        let reference = fault_free(&options);
        let conservative = fault_free(&options.conservative_fallback());

        // The recovery ladder fires on *any* TranslateError: the same panic
        // campaign the fault-injection suite runs, now with one retry.
        configure(FailpointConfig {
            seed: 0xB0155,
            rate_per_mille: 350,
            phase: Some(TranslatePhase::Coalesce),
        });
        let poisoned: Vec<usize> =
            (0..N).filter(|&i| should_fail(&format!("sc{i}"), TranslatePhase::Coalesce)).collect();
        assert!(
            !poisoned.is_empty() && poisoned.len() < N,
            "campaign must poison a strict subset, hit {poisoned:?}"
        );

        for threads in [1, 3] {
            let mut healed = corpus(N);
            let stats = translate_corpus_isolated_policy(
                &mut healed,
                &options,
                &Limits::UNBOUNDED,
                &EnginePolicy::default().with_retries(1),
                threads,
            );
            assert_eq!(stats.num_errors(), 0, "threads={threads}: retry must heal all");
            assert_eq!(stats.recovered_functions(), poisoned.len(), "threads={threads}");
            for i in 0..N {
                let fn_stats = stats.results[i].as_ref().unwrap();
                if poisoned.contains(&i) {
                    assert_eq!(
                        fn_stats.recovery,
                        RecoveryOutcome::Recovered { attempt: 2 },
                        "threads={threads}: function {i}"
                    );
                    assert_eq!(healed[i], conservative[i], "threads={threads}: survivor {i}");
                } else {
                    assert_eq!(fn_stats.recovery, RecoveryOutcome::Clean);
                    assert_eq!(healed[i], reference[i], "threads={threads}: neighbour {i}");
                }
            }
        }
        clear();
    }

    #[test]
    fn pipeline_rejects_and_then_recovers_a_corrupted_function() {
        let _guard = CAMPAIGN.lock().unwrap_or_else(|e| e.into_inner());
        clear();
        clear_corruption();
        let options = OutOfSsaOptions::default();

        // Find a pre-SSA function whose pipeline translation emits at least
        // one sequentialized copy window — i.e. where the drop-copy campaign
        // can actually mangle the output.
        configure_corruption(CorruptionConfig {
            seed: 1,
            rate_per_mille: 1000,
            kind: CorruptionKind::DropCopy,
        });
        let victim = (0..32u64)
            .map(|seed| generate_function(format!("pc{seed}"), &GenConfig::small(), seed))
            .find(|func| {
                clear_corruption();
                let mut healthy = func.clone();
                Pipeline::new(options.clone()).run(&mut healthy);
                configure_corruption(CorruptionConfig {
                    seed: 1,
                    rate_per_mille: 1000,
                    kind: CorruptionKind::DropCopy,
                });
                let mut mangled = func.clone();
                Pipeline::new(options.clone()).run(&mut mangled);
                mangled != healthy
            })
            .expect("some generated function has a corruptible copy window");

        // Fault-free references, computed with the injector disarmed.
        clear_corruption();
        let mut healthy = victim.clone();
        Pipeline::new(options.clone()).run(&mut healthy);
        let mut conservative = victim.clone();
        Pipeline::new(options.conservative_fallback()).run(&mut conservative);

        configure_corruption(CorruptionConfig {
            seed: 1,
            rate_per_mille: 1000,
            kind: CorruptionKind::DropCopy,
        });

        // Without recovery, the differential validator rejects the run.
        let mut pipeline =
            Pipeline::new(options.clone()).with_validation(ValidationMode::Differential);
        let mut func = victim.clone();
        let err = pipeline.try_run(&mut func).unwrap_err();
        assert!(matches!(err, TranslateError::ValidationFailed { .. }), "{err:?}");
        assert_eq!(err.phase(), Some(TranslatePhase::Validate));

        // With one retry, the same pipeline object heals the function on the
        // conservative configuration.
        let mut pipeline = Pipeline::new(options.clone())
            .with_validation(ValidationMode::Differential)
            .with_recovery(RecoveryPolicy::retries(1));
        let mut func = victim.clone();
        let report = pipeline.try_run(&mut func).unwrap();
        assert_eq!(report.translation.recovery, RecoveryOutcome::Recovered { attempt: 2 });
        assert_eq!(report.translation.validation_failures, 1);
        assert_eq!(func, conservative, "recovered output must match the conservative run");
        clear_corruption();

        // And with the injector disarmed, the same pipeline translates the
        // victim cleanly again (its caches were quarantined, not wedged).
        let mut func = victim.clone();
        let report = pipeline.try_run(&mut func).unwrap();
        assert_eq!(report.translation.recovery, RecoveryOutcome::Clean);
        assert_eq!(func, healthy);
    }
}
