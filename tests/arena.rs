//! Arena-backed operand storage: recycling and invariant tests.
//!
//! The IR stores parallel-copy moves, φ arguments and call arguments as
//! ranges into function-owned pools. Two properties keep that sound:
//!
//! * **recycling is invisible** — a function rebuilt through recycled
//!   storage (`build → translate → reset → rebuild`), then translated, is
//!   bit-identical to a freshly built one, for every Figure 5 variant;
//! * **live ranges never overlap** — at any point, the pool blocks of the
//!   attached instructions are pairwise disjoint (the free-list recycling
//!   of retired blocks must never hand out storage a live list still uses).

use out_of_ssa::cfggen::{
    generate_ssa_function, generate_ssa_function_into, pin_call_conventions, GenConfig,
};
use out_of_ssa::destruct::{translate_out_of_ssa, OutOfSsaOptions};
use out_of_ssa::interp::{same_behaviour, Interpreter};
use out_of_ssa::ir::{Function, InstData};

/// Checks that the pool blocks referenced by attached instructions are
/// pairwise disjoint within each pool, and inside the pool bounds.
fn assert_pool_ranges_disjoint(func: &Function, context: &str) {
    let mut copy_ranges: Vec<(usize, usize)> = Vec::new();
    let mut phi_ranges: Vec<(usize, usize)> = Vec::new();
    let mut value_ranges: Vec<(usize, usize)> = Vec::new();
    for block in func.blocks() {
        for &inst in func.block_insts(block) {
            match func.inst(inst) {
                InstData::ParallelCopy { copies } if !copies.is_empty() => {
                    copy_ranges.push((copies.offset(), copies.capacity()));
                    assert!(
                        copies.offset() + copies.len() <= func.pools().copies.len(),
                        "{context}: copy list out of pool bounds"
                    );
                }
                InstData::Phi { args, .. } if !args.is_empty() => {
                    phi_ranges.push((args.offset(), args.capacity()));
                    assert!(
                        args.offset() + args.len() <= func.pools().phis.len(),
                        "{context}: phi list out of pool bounds"
                    );
                }
                InstData::Call { args, .. } if !args.is_empty() => {
                    value_ranges.push((args.offset(), args.capacity()));
                    assert!(
                        args.offset() + args.len() <= func.pools().values.len(),
                        "{context}: call list out of pool bounds"
                    );
                }
                _ => {}
            }
        }
    }
    for (pool, ranges) in
        [("copies", &mut copy_ranges), ("phis", &mut phi_ranges), ("values", &mut value_ranges)]
    {
        ranges.sort_unstable();
        for pair in ranges.windows(2) {
            let (a_off, a_cap) = pair[0];
            let (b_off, _) = pair[1];
            assert!(
                a_off + a_cap <= b_off,
                "{context}: overlapping {pool} pool blocks [{a_off}+{a_cap}] and [{b_off}..]"
            );
        }
    }
}

#[test]
fn recycled_function_storage_is_bit_identical_to_fresh_across_variants() {
    // One Function object cycles through build → translate → reset →
    // rebuild; at every round the rebuilt function and its translation must
    // be indistinguishable from a freshly allocated one's.
    let config = GenConfig::small();
    let mut recycled: Option<Function> = None;
    for (round, seed) in (0..4u64).enumerate() {
        for (name, options) in OutOfSsaOptions::figure5_variants() {
            let (fresh, _) = generate_ssa_function(format!("arena{seed}"), &config, seed);
            let (rebuilt, _) = match recycled.take() {
                Some(old) => generate_ssa_function_into(old, format!("arena{seed}"), &config, seed),
                None => generate_ssa_function(format!("arena{seed}"), &config, seed),
            };
            assert_eq!(rebuilt, fresh, "round {round}, {name}: rebuilt function differs");
            assert_eq!(
                rebuilt.display().to_string(),
                fresh.display().to_string(),
                "round {round}, {name}: rebuilt printout differs"
            );

            let mut fresh_t = fresh;
            let mut rebuilt_t = rebuilt;
            pin_call_conventions(&mut fresh_t);
            pin_call_conventions(&mut rebuilt_t);
            let fresh_stats = translate_out_of_ssa(&mut fresh_t, &options);
            let rebuilt_stats = translate_out_of_ssa(&mut rebuilt_t, &options);
            assert_eq!(rebuilt_t, fresh_t, "round {round}, {name}: translation differs");
            assert_eq!(rebuilt_stats, fresh_stats, "round {round}, {name}: stats differ");
            assert_pool_ranges_disjoint(&rebuilt_t, &format!("round {round}, {name}"));

            // The recycled object continues into the next round *after*
            // translation, so the reset has to cope with the retired-list
            // churn of rewrite and sequentialization.
            recycled = Some(rebuilt_t);
        }
    }
}

#[test]
fn pool_ranges_stay_disjoint_through_the_pipeline() {
    for seed in 0..12u64 {
        let config = GenConfig::small();
        let (mut func, _) = generate_ssa_function(format!("ranges{seed}"), &config, seed);
        assert_pool_ranges_disjoint(&func, &format!("seed {seed}, pre-translation"));
        let original = func.clone();
        let options = OutOfSsaOptions::sharing().with_sequentialize(false);
        translate_out_of_ssa(&mut func, &options);
        assert_pool_ranges_disjoint(&func, &format!("seed {seed}, post-translation"));
        // The translated function still behaves like the original.
        for args in [[0, 1, 2], [7, -3, 5]] {
            let a = Interpreter::new().run(&original, &args).expect("original runs");
            let b = Interpreter::new().run(&func, &args).expect("translated runs");
            assert!(same_behaviour(&a, &b), "seed {seed}: behaviour differs");
        }
    }
}

#[test]
fn pooled_checkout_retire_recheckout_is_bit_identical() {
    use out_of_ssa::destruct::EngineWorker;
    use out_of_ssa::destruct::{translate_corpus_serial, translate_stream_pooled_serial};
    use out_of_ssa::ir::FunctionPool;

    let config = GenConfig::small();
    let options = OutOfSsaOptions::default();
    let count = 6u64;

    // Reference: batch translation of freshly allocated functions.
    let mut batch: Vec<Function> = (0..count)
        .map(|seed| {
            let (mut func, _) = generate_ssa_function(format!("pool{seed}"), &config, seed);
            pin_call_conventions(&mut func);
            func
        })
        .collect();
    let batch_stats = translate_corpus_serial(&mut batch, &options);

    // Pooled streaming through one persistent worker: after the first pass
    // every checkout re-uses a slot that already went through a full
    // build → translate → retire cycle, so three passes exercise
    // checkout → retire → re-checkout twice over on every slot.
    let mut worker = EngineWorker::new();
    for pass in 0..3usize {
        let mut next = 0u64;
        let mut source = |pool: &mut FunctionPool| -> Option<Function> {
            if next == count {
                return None;
            }
            let seed = next;
            next += 1;
            let slot = pool.checkout();
            let (mut func, _) =
                generate_ssa_function_into(slot, format!("pool{seed}"), &config, seed);
            pin_call_conventions(&mut func);
            Some(func)
        };
        let mut seen = 0usize;
        let stream_stats =
            translate_stream_pooled_serial(&mut source, &mut worker, &options, |index, func, _| {
                assert_eq!(
                    *func, batch[index],
                    "pass {pass}: pooled function {index} differs from batch"
                );
                assert_eq!(
                    func.display().to_string(),
                    batch[index].display().to_string(),
                    "pass {pass}: pooled printout {index} differs from batch"
                );
                assert_pool_ranges_disjoint(func, &format!("pass {pass}, function {index}"));
                seen += 1;
            });
        assert_eq!(seen, count as usize, "pass {pass}: consumer saw every function");
        assert_eq!(
            stream_stats.per_function, batch_stats.per_function,
            "pass {pass}: pooled stream statistics differ from batch"
        );
    }

    // Serial lifecycle accounting: the first pass recycles from the second
    // checkout on (each function is retired before the next checkout), later
    // passes recycle every checkout; nothing is ever discarded and exactly
    // one slot remains parked in the free list.
    let stats = worker.pool.stats();
    assert_eq!(stats.checkouts, 18, "three passes of six checkouts");
    assert_eq!(stats.recycled, 17, "every checkout after the first recycles");
    assert_eq!(stats.retired, 18, "every translated function was retired");
    assert_eq!(stats.discarded, 0, "healthy stream discards nothing");
    assert_eq!(worker.pool.free_len(), 1, "serial stream parks exactly one slot");
}

#[test]
fn remove_inst_retires_lists_for_reuse() {
    use out_of_ssa::ir::builder::FunctionBuilder;
    use out_of_ssa::ir::CopyPair;
    let mut b = FunctionBuilder::new("retire", 0);
    let entry = b.create_block();
    b.set_entry(entry);
    b.switch_to_block(entry);
    let x = b.iconst(1);
    let y = b.declare_value();
    let z = b.declare_value();
    let pc = b.parallel_copy(vec![CopyPair { dst: y, src: x }, CopyPair { dst: z, src: x }]);
    b.ret(Some(y));
    let mut f = b.finish();
    let pool_len = f.pools().copies.len();
    f.remove_inst(entry, pc);
    // A new list of the same size class reuses the retired block: the flat
    // pool does not grow.
    let _ = f.make_copy_list(&[CopyPair { dst: y, src: x }, CopyPair { dst: z, src: x }]);
    assert_eq!(f.pools().copies.len(), pool_len, "retired block was not reused");
}
