//! # out-of-ssa — umbrella crate
//!
//! Reproduction of *"Revisiting Out-of-SSA Translation for Correctness, Code
//! Quality, and Efficiency"* (Boissinot, Darte, Rastello, Dupont de Dinechin,
//! Guillon — CGO 2009).
//!
//! This crate re-exports the individual crates of the workspace so that
//! examples and downstream users can depend on a single package:
//!
//! * [`ir`] — the SSA intermediate representation substrate,
//! * [`liveness`] — liveness sets, fast liveness checking, intersection tests,
//! * [`ssa`] — SSA construction, copy propagation, CSSA checking,
//! * [`destruct`] — the paper's out-of-SSA translation (the core contribution),
//! * [`interp`] — the reference interpreter used as a semantic oracle,
//! * [`cfggen`] — synthetic workloads simulating the SPEC CINT2000 corpus,
//! * [`regalloc`] — a linear-scan register allocator consuming the output,
//! * [`service`] — an overload-resilient translation service (bounded
//!   queues, deadlines, backpressure, degradation ladders),
//!
//! and adds the [`pipeline`] layer: a [`Pipeline`] pass manager that runs
//! the whole flow — SSA construction, copy propagation, DCE, CSSA check,
//! out-of-SSA translation, register allocation — over **one** shared
//! analysis cache with per-pass invalidation, so each analysis is computed
//! at most once per CFG version.
//!
//! # Examples
//!
//! ```
//! use out_of_ssa::cfggen::{generate_ssa_function, GenConfig};
//! use out_of_ssa::destruct::{translate_out_of_ssa, OutOfSsaOptions};
//!
//! let (mut func, _) = generate_ssa_function("demo", &GenConfig::small(), 1);
//! let stats = translate_out_of_ssa(&mut func, &OutOfSsaOptions::default());
//! assert_eq!(func.count_phis(), 0);
//! assert!(stats.remaining_copies <= stats.moves_inserted);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod pipeline;

pub use ossa_cfggen as cfggen;
pub use ossa_destruct as destruct;
pub use ossa_interp as interp;
pub use ossa_ir as ir;
pub use ossa_liveness as liveness;
pub use ossa_regalloc as regalloc;
pub use ossa_service as service;
pub use ossa_ssa as ssa;
pub use pipeline::{Pipeline, PipelineReport};
