//! The unified pass pipeline: one analysis cache from SSA construction to
//! register allocation.
//!
//! The paper frames out-of-SSA translation as one stage of a compiler
//! pipeline whose engineering cost is dominated by recomputed analyses.
//! [`Pipeline`] is the pass-manager layer that makes the compute-once claim
//! hold for the *whole* flow, not just the translation: it owns a single
//! [`FunctionAnalyses`] cache and a single [`TranslateScratch`], and runs
//!
//! 1. [`construct_ssa_cached`] — pruned SSA construction,
//! 2. [`propagate_copies_keeping_cached`] — the optimization that breaks
//!    conventionality,
//! 3. [`eliminate_dead_code_cached`],
//! 4. [`is_conventional_cached`] — the CSSA check (optional),
//! 5. a caller-provided renaming-constraint hook (e.g. calling-convention
//!    pins),
//! 6. [`translate_out_of_ssa_scratch`] — the paper's translation,
//! 7. [`allocate_cached`] — linear-scan register allocation (optional),
//!
//! with precise two-tier invalidation declared per pass: passes that only
//! touch the instruction stream (construction, copy propagation, DCE, copy
//! insertion, sequentialization) drop only the instruction-dependent caches,
//! while CFG mutations (edge splitting inside the translation) drop
//! everything. The result, provable through
//! [`FunctionAnalyses::counts`], is that every analysis is computed at most
//! once per (function, CFG version) — and the instruction-dependent ones at
//! most once per instruction version.
//!
//! Reusing one `Pipeline` across many functions additionally recycles the
//! analysis storage (CFG, dominator tree, frontiers, fast-liveness bit-sets,
//! congruence classes, decision maps): invalidation hands the allocations to
//! the next computation instead of freeing them.
//!
//! # Examples
//!
//! ```
//! use out_of_ssa::cfggen::{generate_function, GenConfig};
//! use out_of_ssa::destruct::OutOfSsaOptions;
//! use out_of_ssa::pipeline::Pipeline;
//!
//! let mut pipeline = Pipeline::new(OutOfSsaOptions::default()).with_registers(8);
//! let mut func = generate_function("demo", &GenConfig::small(), 42);
//! let report = pipeline.run(&mut func);
//! assert_eq!(func.count_phis(), 0);
//! assert!(report.allocation.is_some());
//! ```

use std::time::{Duration, Instant};

use ossa_destruct::fault::{self, TranslatePhase};
use ossa_destruct::{
    translate_out_of_ssa_scratch, validate_translation, Limits, OutOfSsaOptions, OutOfSsaStats,
    PooledSource, RecoveryOutcome, RecoveryPolicy, TranslateError, TranslateScratch,
    ValidationMode,
};
use ossa_ir::{Function, FunctionPool};
use ossa_liveness::{AnalysisCounts, FunctionAnalyses};
use ossa_regalloc::{allocate_cached, Allocation};
use ossa_ssa::{
    construct_ssa_cached, eliminate_dead_code_cached, is_conventional_cached,
    propagate_copies_keeping_cached, CopyPropagation, DeadCodeElimination, SsaConstruction,
};

/// Report of one [`Pipeline::run`]: the per-pass statistics in pass order.
#[derive(Clone, Debug)]
pub struct PipelineReport {
    /// SSA construction statistics.
    pub construction: SsaConstruction,
    /// Copy-propagation statistics.
    pub copy_propagation: CopyPropagation,
    /// Dead-code-elimination statistics.
    pub dead_code: DeadCodeElimination,
    /// Whether the function was still in conventional SSA form after the
    /// optimizations (`None` when the check is disabled). Copy propagation
    /// generally breaks conventionality — that is what the translation has
    /// to repair.
    pub conventional_after_opt: Option<bool>,
    /// Out-of-SSA translation statistics.
    pub translation: OutOfSsaStats,
    /// Register allocation (`None` when no register count is configured).
    pub allocation: Option<Allocation>,
}

/// The pass pipeline: one analysis cache and one translation scratch, owned
/// across passes *and* across functions.
///
/// See the [module documentation](self) for the flow and the invalidation
/// contract.
#[derive(Debug)]
pub struct Pipeline {
    options: OutOfSsaOptions,
    num_regs: Option<u32>,
    keep_copy_every: usize,
    check_conventional: bool,
    limits: Limits,
    validation: ValidationMode,
    recovery: RecoveryPolicy,
    deadline: Option<Duration>,
    analyses: FunctionAnalyses,
    scratch: TranslateScratch,
    pool: FunctionPool,
}

impl Pipeline {
    /// Creates a pipeline translating with `options`; no register allocation,
    /// full copy propagation, CSSA check enabled.
    pub fn new(options: OutOfSsaOptions) -> Self {
        Self {
            options,
            num_regs: None,
            keep_copy_every: 0,
            check_conventional: true,
            limits: Limits::UNBOUNDED,
            validation: ValidationMode::Off,
            recovery: RecoveryPolicy::default(),
            deadline: None,
            analyses: FunctionAnalyses::new(),
            scratch: TranslateScratch::new(),
            pool: FunctionPool::new(),
        }
    }

    /// Sets the resource bounds enforced by [`Pipeline::try_run`] (the
    /// panic-free entry point); [`Pipeline::run`] ignores them.
    pub fn with_limits(mut self, limits: Limits) -> Self {
        self.limits = limits;
        self
    }

    /// Enables register allocation with `num_regs` architectural registers
    /// as the final pass.
    pub fn with_registers(mut self, num_regs: u32) -> Self {
        self.num_regs = Some(num_regs);
        self
    }

    /// Keeps every `keep_every`-th copy during copy propagation (`0` keeps
    /// none) — real optimization pipelines rarely remove every copy, and the
    /// remaining ones are where the coalescing strategies differ.
    pub fn with_kept_copies(mut self, keep_every: usize) -> Self {
        self.keep_copy_every = keep_every;
        self
    }

    /// Enables or disables the CSSA check between the optimizations and the
    /// translation (it is a read-only diagnostic; disabling it also skips
    /// computing the liveness sets it needs).
    pub fn with_cssa_check(mut self, check: bool) -> Self {
        self.check_conventional = check;
        self
    }

    /// Sets the post-translation [`ValidationMode`] of the `try_run*` entry
    /// points: the pipeline's output is checked structurally — and, in
    /// differential mode, executed against a pristine snapshot of the
    /// pre-SSA input — before it is handed back. [`Pipeline::run`] is the
    /// unchecked fast path and ignores this.
    pub fn with_validation(mut self, mode: ValidationMode) -> Self {
        self.validation = mode;
        self
    }

    /// Sets the recovery ladder of the `try_run*` entry points: on any
    /// failure (panic, limit, validation), the function is restored from
    /// its pristine snapshot and re-run on the conservative configuration
    /// ([`OutOfSsaOptions::conservative_fallback`]) up to
    /// `recovery.max_retries` times.
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Sets a wall-clock budget for each `try_run*` call: a cancellation
    /// token ([`ossa_liveness::fuel::set_deadline`]) spanning the *whole*
    /// recovery ladder — retries share the budget rather than resetting it.
    /// Expiry surfaces as [`TranslateError::DeadlineExceeded`] at the next
    /// phase boundary or fixpoint tick. An already-installed ambient
    /// deadline (e.g. a service worker's per-request token) is narrowed,
    /// never widened, and is restored on return. [`Pipeline::run`] is the
    /// unchecked fast path and ignores this.
    pub fn with_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.deadline = deadline;
        self
    }

    /// The shared analysis cache (for inspection; the compute counters in
    /// particular).
    pub fn analyses(&self) -> &FunctionAnalyses {
        &self.analyses
    }

    /// The cumulative analysis compute counters across everything this
    /// pipeline has run.
    pub fn counts(&self) -> AnalysisCounts {
        self.analyses.counts()
    }

    /// The pipeline's function-storage pool (used by [`Pipeline::run_stream`]
    /// and [`Pipeline::try_run_stream`]; exposed for traffic inspection).
    pub fn pool(&self) -> &FunctionPool {
        &self.pool
    }

    /// Mutable access to the function-storage pool, e.g. to check slots out
    /// by hand or pre-seed the free list.
    pub fn pool_mut(&mut self) -> &mut FunctionPool {
        &mut self.pool
    }

    /// Pooled streaming front end of the pipeline: drains `source` — which
    /// builds each incoming function into storage checked out of the
    /// pipeline's own [`FunctionPool`] — runs the full pass pipeline on each
    /// function, hands it to `consumer` by reference, and retires the storage
    /// back to the pool. Returns the number of functions processed.
    ///
    /// Because the pool, the analysis cache and the translation scratch all
    /// live in `self`, a pipeline kept across calls reaches the same
    /// steady-state allocation freedom as the engine's pooled workers: once
    /// warm, streaming one more function through `run_stream` performs a
    /// bounded number of heap allocations regardless of stream length.
    pub fn run_stream<S>(
        &mut self,
        source: &mut S,
        mut consumer: impl FnMut(usize, &Function, &PipelineReport),
    ) -> usize
    where
        S: PooledSource + ?Sized,
    {
        // The pool is taken out of `self` for the loop so the pipeline
        // itself stays `&mut`-borrowable per function; `run` never touches
        // it.
        let mut pool = std::mem::take(&mut self.pool);
        let mut index = 0usize;
        while let Some(mut func) = source.next_into(&mut pool) {
            let report = self.run(&mut func);
            consumer(index, &func, &report);
            pool.retire(func);
            index += 1;
        }
        self.pool = pool;
        index
    }

    /// Fault-isolated [`Pipeline::run_stream`]: each function runs through
    /// [`Pipeline::try_run`], so a malformed, oversized or panicking function
    /// reaches `consumer` as `Err` while the stream keeps flowing. The
    /// poisoned function slot is *discarded*, never retired — a partially
    /// rewritten body can never be recycled into a later function — matching
    /// the quarantine of the pipeline's analysis cache and scratch. Returns
    /// the number of functions processed.
    pub fn try_run_stream<S>(
        &mut self,
        source: &mut S,
        mut consumer: impl FnMut(usize, Result<(&Function, &PipelineReport), &TranslateError>),
    ) -> usize
    where
        S: PooledSource + ?Sized,
    {
        let mut pool = std::mem::take(&mut self.pool);
        let mut index = 0usize;
        while let Some(mut func) = source.next_into(&mut pool) {
            match self.try_run(&mut func) {
                Ok(report) => {
                    consumer(index, Ok((&func, &report)));
                    pool.retire(func);
                }
                Err(error) => {
                    consumer(index, Err(&error));
                    pool.discard(func);
                }
            }
            index += 1;
        }
        self.pool = pool;
        index
    }

    /// Runs the full pipeline on `func` (in virtual-register form) in place.
    pub fn run(&mut self, func: &mut Function) -> PipelineReport {
        self.run_with(func, |_| {})
    }

    /// Like [`Pipeline::run`], applying `constrain` between the SSA
    /// optimizations and the translation — the hook where renaming
    /// constraints (calling-convention pins, dedicated registers) are
    /// imposed.
    ///
    /// The hook is meant for pinning values ([`Function::pin_value`]): pins
    /// are not an analysis input. It must not change the block structure
    /// (the cache's debug-build shape stamp catches that). Instruction-level
    /// edits in the hook are tolerated — the pipeline drops every
    /// instruction-dependent cache right after the hook, *before* the
    /// translation's copy insertion (whose per-block liveness repair is only
    /// valid for edits it made itself) — but the CSSA verdict in the report
    /// describes the pre-hook code.
    pub fn run_with(
        &mut self,
        func: &mut Function,
        constrain: impl FnOnce(&mut Function),
    ) -> PipelineReport {
        // Cheap clone (all fields are plain values): lets `run_inner` take
        // the options by reference while borrowing `self` mutably, and lets
        // the recovery ladder substitute the conservative configuration.
        let options = self.options.clone();
        self.run_inner(func, constrain, &options)
    }

    fn run_inner(
        &mut self,
        func: &mut Function,
        constrain: impl FnOnce(&mut Function),
        options: &OutOfSsaOptions,
    ) -> PipelineReport {
        // A new function: drop (and recycle) everything from the previous one.
        self.analyses.invalidate_cfg();

        // Middle end. Each pass declares its own invalidation: these are all
        // instruction-only mutations, so the CFG analyses computed by the
        // first pass survive until the translation splits an edge (if ever).
        fault::enter_phase(&func.name, TranslatePhase::Ssa);
        let construction = construct_ssa_cached(func, &mut self.analyses);
        let copy_propagation =
            propagate_copies_keeping_cached(func, self.keep_copy_every, &mut self.analyses);
        let dead_code = eliminate_dead_code_cached(func, &mut self.analyses);
        let conventional_after_opt =
            self.check_conventional.then(|| is_conventional_cached(func, &self.analyses));

        // Renaming constraints (pins, possibly instruction edits; see the
        // doc contract). The instruction-dependent caches are dropped after
        // the hook: the translation's per-block liveness repair only covers
        // its *own* copy insertion, so liveness cached by the CSSA check
        // must not survive arbitrary hook edits. (Pins-only hooks pay
        // nothing extra: the translation recomputed liveness after its
        // insertion anyway.)
        constrain(func);
        self.analyses.invalidate_instructions();

        // Back end over the same cache and scratch.
        let translation =
            translate_out_of_ssa_scratch(func, options, &mut self.analyses, &mut self.scratch);
        fault::enter_phase(&func.name, TranslatePhase::Regalloc);
        let allocation = self.num_regs.map(|regs| allocate_cached(func, regs, &self.analyses));

        PipelineReport {
            construction,
            copy_propagation,
            dead_code,
            conventional_after_opt,
            translation,
            allocation,
        }
    }

    /// Fault-isolated [`Pipeline::run`]: the input is structurally verified
    /// and checked against the configured [`Limits`] up front, and the whole
    /// pipeline runs under a panic boundary, so a malformed, oversized or
    /// panicking function returns a typed [`TranslateError`] instead of
    /// unwinding into the caller.
    ///
    /// On `Err`, the pipeline's analysis cache and scratch are quarantined
    /// (rebuilt fresh — an unwind can leave them mid-mutation) and `func`
    /// may have been partially rewritten; the pipeline itself stays usable
    /// and later functions translate bit-identically to a fault-free run.
    /// The happy path of [`Pipeline::run`] is untouched: it performs no
    /// catching, no release-mode verification and no limit checks.
    pub fn try_run(&mut self, func: &mut Function) -> Result<PipelineReport, TranslateError> {
        self.try_run_with(func, |_| {})
    }

    /// Like [`Pipeline::try_run`], applying `constrain` between the SSA
    /// optimizations and the translation (the [`Pipeline::run_with`] hook).
    /// The hook is `FnMut` because a recovery retry re-runs the whole
    /// pipeline — including the hook — on the restored pristine input.
    pub fn try_run_with(
        &mut self,
        func: &mut Function,
        mut constrain: impl FnMut(&mut Function),
    ) -> Result<PipelineReport, TranslateError> {
        let _deadline = self.deadline.map(DeadlineGuard::install);
        if self.validation == ValidationMode::Off && self.recovery.max_retries == 0 {
            let options = self.options.clone();
            return self.try_run_attempt(func, &mut constrain, &options, None);
        }

        let pristine = func.clone();
        let max_attempts = 1 + self.recovery.max_retries;
        let mut validation_failures = 0usize;
        let mut last_error = None;
        for attempt in 0..max_attempts {
            #[cfg(feature = "failpoints")]
            ossa_destruct::fault::failpoints::set_attempt(attempt);
            let options = if attempt == 0 {
                self.options.clone()
            } else {
                // A retry starts over: pristine input, conservative options
                // (the attempt itself quarantined the caches on failure).
                func.clone_from(&pristine);
                self.options.conservative_fallback()
            };
            match self.try_run_attempt(func, &mut constrain, &options, Some(&pristine)) {
                Ok(mut report) => {
                    report.translation.validation_failures = validation_failures;
                    if attempt > 0 {
                        report.translation.recovery =
                            RecoveryOutcome::Recovered { attempt: attempt + 1 };
                    }
                    #[cfg(feature = "failpoints")]
                    ossa_destruct::fault::failpoints::set_attempt(0);
                    return Ok(report);
                }
                Err(error) => {
                    if matches!(error, TranslateError::ValidationFailed { .. }) {
                        validation_failures += 1;
                    }
                    last_error = Some(error);
                }
            }
        }
        #[cfg(feature = "failpoints")]
        ossa_destruct::fault::failpoints::set_attempt(0);
        Err(last_error.expect("at least one attempt ran"))
    }

    /// One isolated pipeline attempt: verify, run, and (when configured)
    /// validate the output against `pristine`. Quarantines the analysis
    /// cache and scratch on any `Err`.
    fn try_run_attempt(
        &mut self,
        func: &mut Function,
        constrain: &mut impl FnMut(&mut Function),
        options: &OutOfSsaOptions,
        pristine: Option<&Function>,
    ) -> Result<PipelineReport, TranslateError> {
        ossa_liveness::fuel::set_fixpoint_fuel(self.limits.max_fixpoint_iters);
        let caught = ossa_destruct::catch_translate(|| {
            fault::enter_phase(&func.name, TranslatePhase::Verify);
            self.limits.check_function(func)?;
            // The pipeline ingests virtual-register (pre-SSA) code, so only
            // the structural verifier applies here; SSA invariants are
            // established by the construction pass itself.
            if let Err(errors) = ossa_ir::verify_cfg(func) {
                return Err(TranslateError::Malformed {
                    phase: TranslatePhase::Verify,
                    detail: errors.to_string(),
                });
            }
            let report = self.run_inner(func, &mut *constrain, options);
            if self.validation != ValidationMode::Off {
                fault::enter_phase(&func.name, TranslatePhase::Validate);
                let reference = pristine.expect("validation requires a pristine snapshot");
                // The differential reference is the pre-SSA *input*: the
                // whole pipeline (construction, optimizations, hook,
                // translation) must preserve its observable behaviour.
                validate_translation(reference, func, options, self.validation)?;
            }
            Ok(report)
        });
        ossa_liveness::fuel::set_fixpoint_fuel(None);
        let result = caught.unwrap_or_else(Err);
        if result.is_err() {
            self.analyses = FunctionAnalyses::new();
            self.scratch = TranslateScratch::new();
        }
        result
    }
}

/// RAII installation of a [`Pipeline::with_deadline`] budget: narrows any
/// ambient deadline already on the thread (a tighter outer token — e.g. a
/// service worker's per-request deadline — keeps winning) and restores it
/// on drop, including on unwind.
struct DeadlineGuard {
    previous: Option<Instant>,
}

impl DeadlineGuard {
    fn install(budget: Duration) -> Self {
        let previous = ossa_liveness::fuel::current_deadline();
        let target = Instant::now() + budget;
        let effective = previous.map_or(target, |p| p.min(target));
        ossa_liveness::fuel::set_deadline(Some(effective));
        Self { previous }
    }
}

impl Drop for DeadlineGuard {
    fn drop(&mut self) {
        ossa_liveness::fuel::set_deadline(self.previous);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ossa_cfggen::{generate_function, generate_function_into, pin_call_conventions, GenConfig};
    use ossa_destruct::translate_out_of_ssa;
    use ossa_interp::{same_behaviour, Interpreter};
    use ossa_regalloc::{allocate, check_allocation};
    use ossa_ssa::{construct_ssa, eliminate_dead_code, is_conventional, propagate_copies};

    #[test]
    fn pipeline_matches_the_manual_pass_sequence() {
        let options = OutOfSsaOptions::default();
        let mut pipeline = Pipeline::new(options.clone()).with_registers(8);
        for seed in 0..6u64 {
            let config = GenConfig::small();
            let reference = generate_function(format!("p{seed}"), &config, seed);

            // Manual flow: fresh analyses in every pass.
            let mut manual = reference.clone();
            let construction = construct_ssa(&mut manual);
            let prop = propagate_copies(&mut manual);
            let dce = eliminate_dead_code(&mut manual);
            let conventional = is_conventional(&manual);
            pin_call_conventions(&mut manual);
            let translation = translate_out_of_ssa(&mut manual, &options);
            let allocation = allocate(&manual, 8);

            // Pipeline flow: one shared cache, reused across seeds.
            let mut piped = reference.clone();
            let report = pipeline.run_with(&mut piped, |f| {
                pin_call_conventions(f);
            });

            assert_eq!(manual, piped, "seed {seed}: translated code differs");
            assert_eq!(report.construction.phis_inserted, construction.phis_inserted);
            assert_eq!(report.copy_propagation, prop);
            assert_eq!(report.dead_code, dce);
            assert_eq!(report.conventional_after_opt, Some(conventional));
            assert_eq!(report.translation, translation);
            let piped_alloc = report.allocation.expect("allocation configured");
            assert_eq!(piped_alloc.locations, allocation.locations, "seed {seed}");
            assert_eq!(piped_alloc.spills, allocation.spills, "seed {seed}");
            check_allocation(&piped, &piped_alloc, 8).expect("allocation verifies");

            // End-to-end behaviour against the pre-SSA reference.
            for args in [[1, 2, 3], [0, -4, 9]] {
                let a = Interpreter::new().run(&reference, &args).expect("reference runs");
                let b = Interpreter::new().run(&piped, &args).expect("pipeline output runs");
                assert!(same_behaviour(&a, &b), "seed {seed} differs on {args:?}");
            }
        }
    }

    #[test]
    fn no_analysis_is_computed_twice_per_version() {
        let mut pipeline = Pipeline::new(OutOfSsaOptions::default()).with_registers(8);
        for seed in 0..8u64 {
            let mut func = generate_function(format!("count{seed}"), &GenConfig::small(), seed);
            let before = pipeline.counts();
            pipeline.run_with(&mut func, |f| {
                pin_call_conventions(f);
            });
            let after = pipeline.counts();

            // Per-run deltas: computations vs versions seen during this run.
            let cfg_versions = after.ir.cfg_versions - before.ir.cfg_versions + 1;
            let inst_versions = after.inst_versions - before.inst_versions + 1;
            assert!(after.ir.cfg - before.ir.cfg <= cfg_versions, "cfg recomputed");
            assert!(after.ir.domtree - before.ir.domtree <= cfg_versions, "domtree recomputed");
            assert!(
                after.ir.frontiers - before.ir.frontiers <= cfg_versions,
                "frontiers recomputed"
            );
            assert!(after.ir.loops - before.ir.loops <= cfg_versions, "loops recomputed");
            assert!(
                after.ir.frequencies - before.ir.frequencies <= cfg_versions,
                "frequencies recomputed"
            );
            assert!(
                after.fast_liveness - before.fast_liveness <= cfg_versions,
                "fast liveness recomputed for an unchanged CFG"
            );
            assert!(
                after.liveness_sets - before.liveness_sets <= inst_versions,
                "liveness sets recomputed for unchanged instructions"
            );
            assert!(
                after.live_range_info - before.live_range_info <= inst_versions,
                "def/use index recomputed for unchanged instructions"
            );
        }
    }

    #[test]
    fn pooled_stream_matches_per_function_runs() {
        let options = OutOfSsaOptions::default();

        // Reference: per-function `run` calls on freshly built functions.
        let mut reference = Pipeline::new(options.clone());
        let mut expected = Vec::new();
        for seed in 0..5u64 {
            let mut func = generate_function(format!("s{seed}"), &GenConfig::small(), seed);
            reference.run(&mut func);
            expected.push(func);
        }

        // Pooled stream: the same functions built into recycled pool slots.
        let mut pipeline = Pipeline::new(options);
        let mut next = 0u64;
        let mut source = |pool: &mut FunctionPool| {
            if next >= 5 {
                return None;
            }
            let seed = next;
            next += 1;
            let slot = pool.checkout();
            Some(generate_function_into(slot, format!("s{seed}"), &GenConfig::small(), seed))
        };
        let mut seen = Vec::new();
        let processed = pipeline.run_stream(&mut source, |_, func, _| seen.push(func.clone()));

        assert_eq!(processed, 5);
        assert_eq!(seen, expected);
        let stats = pipeline.pool().stats();
        assert_eq!(stats.retired, 5);
        assert_eq!(stats.recycled, 4, "all checkouts after the first recycle the slot");
    }

    #[test]
    fn deadline_aborts_try_run_with_a_typed_error_and_is_restored() {
        let mut pipeline =
            Pipeline::new(OutOfSsaOptions::default()).with_deadline(Some(Duration::ZERO));
        let mut func = generate_function("dl", &GenConfig::small(), 3);
        let err = pipeline.try_run(&mut func).expect_err("zero budget expires immediately");
        assert!(matches!(err, TranslateError::DeadlineExceeded { .. }), "got {err:?}");
        // The guard restored the thread's ambient deadline (none here).
        assert_eq!(ossa_liveness::fuel::current_deadline(), None);
        // Clearing the budget lets the same pipeline succeed.
        let mut pipeline = pipeline.with_deadline(None);
        let mut fresh = generate_function("dl", &GenConfig::small(), 3);
        pipeline.try_run(&mut fresh).expect("no deadline");
    }

    #[test]
    fn pipeline_without_allocation_or_check_still_translates() {
        let mut pipeline =
            Pipeline::new(OutOfSsaOptions::sharing()).with_cssa_check(false).with_kept_copies(3);
        let mut func = generate_function("bare", &GenConfig::small(), 7);
        let report = pipeline.run(&mut func);
        assert_eq!(func.count_phis(), 0);
        assert!(report.allocation.is_none());
        assert!(report.conventional_after_opt.is_none());
        assert!(report.translation.phis_removed >= 1);
    }
}
